//! The capture loop: drives master, PLC and attack injector and emits
//! labelled, timestamped wire packets.

use icsad_modbus::pipeline::{
    decode_read_response, decode_write_command, encode_read_command, encode_read_response,
    encode_write_command, PipelineState,
};
use icsad_modbus::{Frame, FunctionCode};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::attack::{
    malicious_function_frame, malicious_parameter_command, malicious_state_command,
    random_pressure_response, stale_pressure_response, AttackConfig, AttackInjector, AttackType,
};
use crate::master::{OperatorConfig, ScadaMaster};
use crate::physics::PhysicsConfig;
use crate::plc::PipelinePlc;

/// One captured packet: wire bytes, capture timestamp, direction and ground
/// truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Seconds since the start of the capture.
    pub time: f64,
    /// Encoded Modbus RTU frame (CRC possibly corrupted by line noise or an
    /// attacker).
    pub wire: Vec<u8>,
    /// `true` for master→slave packets, `false` for slave→master.
    pub is_command: bool,
    /// Ground-truth label; `None` for legitimate traffic.
    pub label: Option<AttackType>,
}

impl Packet {
    /// Returns `true` if this packet belongs to an attack.
    pub fn is_attack(&self) -> bool {
        self.label.is_some()
    }
}

/// Configuration of the traffic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Master seed for all randomness in the capture.
    pub seed: u64,
    /// Station address of the pipeline PLC.
    pub slave_address: u8,
    /// Mean gap between polling cycles, seconds.
    pub inter_cycle_gap: f64,
    /// Mean gap between packets inside a cycle, seconds.
    pub intra_cycle_gap: f64,
    /// Relative jitter (std/mean) applied to every gap.
    pub gap_jitter: f64,
    /// Probability of line noise corrupting a legitimate packet's CRC.
    pub bad_crc_rate: f64,
    /// Probability of starting an attack episode at an idle cycle boundary.
    /// Set to `0.0` for a clean (training) capture.
    pub attack_probability: f64,
    /// Inclusive range of attack episode lengths in polling cycles.
    pub attack_episode_cycles: (u32, u32),
    /// Relative frequency of the seven attack types.
    pub attack_weights: [f64; 7],
    /// Operator behaviour model.
    pub operator: OperatorConfig,
    /// Pipeline physics parameters.
    pub physics: PhysicsConfig,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0,
            slave_address: 4,
            inter_cycle_gap: 0.5,
            intra_cycle_gap: 0.1,
            gap_jitter: 0.08,
            bad_crc_rate: 0.01,
            attack_probability: 0.05,
            attack_episode_cycles: (2, 12),
            attack_weights: [1.0; 7],
            operator: OperatorConfig::default(),
            physics: PhysicsConfig::default(),
        }
    }
}

/// Generates labelled gas-pipeline SCADA traffic.
///
/// # Examples
///
/// ```
/// use icsad_simulator::traffic::{TrafficConfig, TrafficGenerator};
///
/// let mut clean = TrafficGenerator::new(TrafficConfig {
///     attack_probability: 0.0,
///     ..TrafficConfig::default()
/// });
/// let packets = clean.generate(100);
/// assert!(packets.iter().all(|p| !p.is_attack()));
/// ```
#[derive(Debug)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    master: ScadaMaster,
    plc: PipelinePlc,
    injector: AttackInjector,
    rng: ChaCha12Rng,
    time: f64,
}

impl TrafficGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: TrafficConfig) -> Self {
        let master = ScadaMaster::new(config.slave_address, config.operator.clone());
        let initial = PipelineState {
            pressure: master.command_state().pid.setpoint,
            ..*master.command_state()
        };
        let plc = PipelinePlc::new(config.slave_address, initial, config.physics);
        let injector = AttackInjector::new(AttackConfig {
            episode_probability: config.attack_probability,
            episode_cycles: config.attack_episode_cycles,
            weights: config.attack_weights,
        });
        let rng = ChaCha12Rng::seed_from_u64(config.seed);
        TrafficGenerator {
            config,
            master,
            plc,
            injector,
            rng,
            time: 0.0,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Generates exactly `n` packets (whole cycles are generated and the
    /// output truncated).
    pub fn generate(&mut self, n: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(n + 16);
        while out.len() < n {
            self.generate_cycle(&mut out);
        }
        out.truncate(n);
        out
    }

    /// Generates `cycles` full polling cycles (variable packet count).
    pub fn generate_cycles(&mut self, cycles: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            self.generate_cycle(&mut out);
        }
        out
    }

    fn gap(&mut self, mean: f64) -> f64 {
        let jitter = crate::physics::gaussian(&mut self.rng) * self.config.gap_jitter * mean;
        (mean + jitter).max(mean * 0.2)
    }

    fn push(
        &mut self,
        out: &mut Vec<Packet>,
        frame: &Frame,
        is_command: bool,
        label: Option<AttackType>,
        gap_mean: f64,
        bad_crc_prob: f64,
    ) {
        self.time += self.gap(gap_mean);
        let wire = if self.rng.gen::<f64>() < bad_crc_prob {
            frame.encode_with_bad_crc()
        } else {
            frame.encode()
        };
        out.push(Packet {
            time: self.time,
            wire,
            is_command,
            label,
        });
    }

    fn generate_cycle(&mut self, out: &mut Vec<Packet>) {
        let attack = self.injector.advance_cycle(&mut self.rng);
        self.cycle_with(attack, out);
    }

    /// Generates one polling cycle with the attack decision made by the
    /// caller instead of the random episode scheduler.
    ///
    /// Scenario campaigns use this to script exact attack timelines
    /// (recon cycle here, strike cycle there) while reusing the full
    /// protocol/physics machinery. `None` produces a clean cycle.
    pub fn generate_cycle_forced(&mut self, attack: Option<AttackType>, out: &mut Vec<Packet>) {
        self.cycle_with(attack, out);
    }

    /// Generates one cycle whose write command carries a setpoint drifted
    /// by `offset` from the operator's genuine value, labeled
    /// [`AttackType::Mpci`].
    ///
    /// Unlike the randomized Mpci injection, the drift is caller-
    /// controlled and small per cycle, modeling a stealthy campaign that
    /// walks the setpoint away over many cycles.
    pub fn generate_cycle_drift(&mut self, offset: f64, out: &mut Vec<Packet>) {
        let inter = self.config.inter_cycle_gap;
        let intra = self.config.intra_cycle_gap;
        let noise = self.config.bad_crc_rate;
        let write_cmd = self.master.begin_cycle(&mut self.rng);
        let genuine = decode_write_command(&write_cmd).expect("master write command must decode");
        let mut drifted = genuine;
        drifted.pid.setpoint = (genuine.pid.setpoint + offset).max(0.0);
        let frame = encode_write_command(self.config.slave_address, &drifted);
        self.push(out, &frame, true, Some(AttackType::Mpci), inter, 0.0);
        if let Some(ack) = self.plc.handle_frame(&frame) {
            self.push(out, &ack, false, None, intra, noise);
        }
        let read_cmd = self.master.read_command();
        self.push(out, &read_cmd, true, None, intra, noise);
        if let Some(genuine_resp) = self.plc.handle_frame(&read_cmd) {
            let genuine_state =
                decode_read_response(&genuine_resp).expect("plc read response must decode");
            self.push(out, &genuine_resp, false, None, intra, noise);
            self.master.observe_pressure(genuine_state.pressure);
        }
        let dt = inter + 3.0 * intra;
        self.plc.tick(dt, &mut self.rng);
    }

    fn cycle_with(&mut self, attack: Option<AttackType>, out: &mut Vec<Packet>) {
        let inter = self.config.inter_cycle_gap;
        let intra = self.config.intra_cycle_gap;
        let noise = self.config.bad_crc_rate;
        let write_cmd = self.master.begin_cycle(&mut self.rng);

        // Command-injection attacks slip their packets in ahead of the
        // legitimate cycle.
        match attack {
            Some(AttackType::Msci) => {
                let forged = malicious_state_command(self.plc.state(), &mut self.rng);
                let frame = encode_write_command(self.config.slave_address, &forged);
                self.push(out, &frame, true, Some(AttackType::Msci), inter, 0.0);
                if let Some(resp) = self.plc.handle_frame(&frame) {
                    // The victim's write acknowledgement is byte-identical
                    // to a legitimate ack; like the Morris capture, only the
                    // attacker-injected packet carries the attack label.
                    self.push(out, &resp, false, None, intra, 0.0);
                }
            }
            Some(AttackType::Mpci) => {
                let forged = malicious_parameter_command(self.plc.state(), &mut self.rng);
                let frame = encode_write_command(self.config.slave_address, &forged);
                self.push(out, &frame, true, Some(AttackType::Mpci), inter, 0.0);
                if let Some(resp) = self.plc.handle_frame(&frame) {
                    self.push(out, &resp, false, None, intra, 0.0);
                }
            }
            Some(AttackType::Mfci) => {
                let frame = malicious_function_frame(self.config.slave_address, &mut self.rng);
                self.push(out, &frame, true, Some(AttackType::Mfci), inter, 0.0);
                if let Some(resp) = self.plc.handle_frame(&frame) {
                    self.push(out, &resp, false, Some(AttackType::Mfci), intra, 0.0);
                }
            }
            Some(AttackType::Recon) => {
                let ident = Frame::new(
                    self.config.slave_address,
                    FunctionCode::ReportSlaveId,
                    vec![],
                );
                self.push(out, &ident, true, Some(AttackType::Recon), inter, 0.0);
                if let Some(resp) = self.plc.handle_frame(&ident) {
                    self.push(out, &resp, false, Some(AttackType::Recon), intra, 0.0);
                }
                // Address sweep: poll a station that does not exist.
                let foreign = self
                    .config
                    .slave_address
                    .wrapping_add(self.rng.gen_range(1..=3));
                let probe = encode_read_command(foreign);
                self.push(out, &probe, true, Some(AttackType::Recon), intra, 0.0);
            }
            Some(AttackType::Dos) => {
                // Flood of read commands; the slave's responses are jammed.
                let floods = self.rng.gen_range(3..=6);
                for i in 0..floods {
                    let frame = self.master.read_command();
                    let gap = if i == 0 { inter } else { 0.01 };
                    self.push(out, &frame, true, Some(AttackType::Dos), gap, 0.0);
                }
                // The link stalls: next traffic appears after a long gap.
                self.time += 3.0 + self.rng.gen::<f64>() * 5.0;
                let dt = inter + 3.0 * intra;
                self.plc.tick(dt, &mut self.rng);
                return;
            }
            _ => {}
        }

        // The legitimate 4-packet command–response cycle.
        self.push(out, &write_cmd, true, None, inter, noise);
        if let Some(ack) = self.plc.handle_frame(&write_cmd) {
            self.push(out, &ack, false, None, intra, noise);
        }
        let read_cmd = self.master.read_command();
        self.push(out, &read_cmd, true, None, intra, noise);
        if let Some(genuine_resp) = self.plc.handle_frame(&read_cmd) {
            let genuine_state =
                decode_read_response(&genuine_resp).expect("plc read response must decode");
            match attack {
                Some(AttackType::Nmri) => {
                    // Naive response injection: the attacker races the slave
                    // and the master sees a random-valued response instead
                    // of the genuine one.
                    let forged = random_pressure_response(
                        &genuine_state,
                        self.config.physics.max_pressure,
                        &mut self.rng,
                    );
                    let frame = encode_read_response(self.config.slave_address, &forged);
                    // Naive injection tooling corrupts checksums noticeably
                    // more often than line noise does.
                    self.push(out, &frame, false, Some(AttackType::Nmri), intra, 0.25);
                    self.master.observe_pressure(forged.pressure);
                }
                Some(AttackType::Cmri) => {
                    // The genuine response is swallowed and replaced with a
                    // stale measurement pinned at the set point.
                    let forged = stale_pressure_response(&genuine_state, &mut self.rng);
                    let frame = encode_read_response(self.config.slave_address, &forged);
                    self.push(out, &frame, false, Some(AttackType::Cmri), intra, noise);
                    self.master.observe_pressure(forged.pressure);
                }
                _ => {
                    self.push(out, &genuine_resp, false, None, intra, noise);
                    self.master.observe_pressure(genuine_state.pressure);
                }
            }
        }
        let dt = inter + 3.0 * intra;
        self.plc.tick(dt, &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_config() -> TrafficConfig {
        TrafficConfig {
            attack_probability: 0.0,
            seed: 1,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn generates_requested_packet_count() {
        let mut g = TrafficGenerator::new(clean_config());
        assert_eq!(g.generate(257).len(), 257);
    }

    #[test]
    fn clean_capture_has_no_attacks() {
        let mut g = TrafficGenerator::new(clean_config());
        let packets = g.generate(2_000);
        assert!(packets.iter().all(|p| !p.is_attack()));
    }

    #[test]
    fn clean_capture_follows_four_packet_cycle() {
        let mut g = TrafficGenerator::new(clean_config());
        let packets = g.generate_cycles(10);
        assert_eq!(packets.len(), 40);
        for chunk in packets.chunks(4) {
            assert!(chunk[0].is_command);
            assert!(!chunk[1].is_command);
            assert!(chunk[2].is_command);
            assert!(!chunk[3].is_command);
        }
    }

    #[test]
    fn timestamps_strictly_increase() {
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 3,
            ..TrafficConfig::default()
        });
        let packets = g.generate(3_000);
        for w in packets.windows(2) {
            assert!(w[1].time > w[0].time, "time went backwards");
        }
    }

    #[test]
    fn attack_capture_contains_all_types() {
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 5,
            attack_probability: 0.15,
            ..TrafficConfig::default()
        });
        let packets = g.generate(20_000);
        let mut seen = std::collections::HashSet::new();
        for p in &packets {
            if let Some(ty) = p.label {
                seen.insert(ty);
            }
        }
        assert_eq!(seen.len(), 7, "missing attack types: saw {seen:?}");
    }

    #[test]
    fn most_packets_decode_as_frames() {
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 7,
            attack_probability: 0.1,
            ..TrafficConfig::default()
        });
        let packets = g.generate(5_000);
        let decodable = packets
            .iter()
            .filter(|p| Frame::decode(&p.wire).is_ok())
            .count();
        // Only line noise and NMRI corruption may fail strict decoding.
        assert!(decodable as f64 > 0.9 * packets.len() as f64);
        // And every packet must decode leniently.
        for p in &packets {
            Frame::decode_lenient(&p.wire).expect("lenient decode");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TrafficGenerator::new(TrafficConfig {
            seed: 9,
            ..TrafficConfig::default()
        });
        let mut b = TrafficGenerator::new(TrafficConfig {
            seed: 9,
            ..TrafficConfig::default()
        });
        assert_eq!(a.generate(1_000), b.generate(1_000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TrafficGenerator::new(TrafficConfig {
            seed: 1,
            ..TrafficConfig::default()
        });
        let mut b = TrafficGenerator::new(TrafficConfig {
            seed: 2,
            ..TrafficConfig::default()
        });
        assert_ne!(a.generate(1_000), b.generate(1_000));
    }

    #[test]
    fn dos_episodes_stretch_time_gaps() {
        let mut weights = [0.0; 7];
        weights[5] = 1.0; // DoS only
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 11,
            attack_probability: 0.2,
            attack_weights: weights,
            ..TrafficConfig::default()
        });
        let packets = g.generate(2_000);
        let max_gap = packets
            .windows(2)
            .map(|w| w[1].time - w[0].time)
            .fold(0.0, f64::max);
        assert!(
            max_gap > 2.0,
            "DoS should cause long stalls, max gap {max_gap}"
        );
        assert!(packets.iter().any(|p| p.label == Some(AttackType::Dos)));
    }

    #[test]
    fn mpci_packets_carry_malicious_parameters() {
        let mut weights = [0.0; 7];
        weights[3] = 1.0; // MPCI only
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 13,
            attack_probability: 0.2,
            attack_weights: weights,
            ..TrafficConfig::default()
        });
        let packets = g.generate(5_000);
        let legal_setpoints = [8.0, 10.0, 12.0];
        let mut saw_illegal = false;
        for p in packets
            .iter()
            .filter(|p| p.label == Some(AttackType::Mpci) && p.is_command)
        {
            if let Ok(frame) = Frame::decode(&p.wire) {
                if let Ok(state) = decode_write_command(&frame) {
                    if !legal_setpoints
                        .iter()
                        .any(|&s| (s - state.pid.setpoint).abs() < 1e-6)
                    {
                        saw_illegal = true;
                    }
                }
            }
        }
        assert!(saw_illegal, "MPCI should write illegal setpoints");
    }

    #[test]
    fn recon_probes_foreign_addresses() {
        let mut weights = [0.0; 7];
        weights[6] = 1.0; // Recon only
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 15,
            attack_probability: 0.2,
            attack_weights: weights,
            ..TrafficConfig::default()
        });
        let packets = g.generate(5_000);
        let mut foreign = false;
        for p in packets
            .iter()
            .filter(|p| p.label == Some(AttackType::Recon))
        {
            if let Ok((frame, _)) = Frame::decode_lenient(&p.wire) {
                if frame.address() != 4 {
                    foreign = true;
                }
            }
        }
        assert!(foreign, "recon should sweep foreign addresses");
    }

    #[test]
    fn attack_fraction_tracks_probability() {
        let mut g = TrafficGenerator::new(TrafficConfig {
            seed: 17,
            attack_probability: 0.1,
            ..TrafficConfig::default()
        });
        let packets = g.generate(30_000);
        let attacks = packets.iter().filter(|p| p.is_attack()).count();
        let frac = attacks as f64 / packets.len() as f64;
        // Episodes average ~7 cycles; expect a substantial but minority share.
        assert!(frac > 0.05 && frac < 0.6, "attack fraction {frac}");
    }
}
