//! The PID pressure controller.
//!
//! The controller is parameterized exactly by the five PID features of the
//! dataset (gain, reset rate, rate, dead band, cycle time) plus the set
//! point, and produces bang-bang actuator decisions for whichever actuator
//! the control scheme selects (compressor pump or solenoid relief valve).

use icsad_modbus::pipeline::{ControlScheme, PidSettings};

/// Discrete actuator decision taken once per controller cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActuatorCommand {
    /// Whether the compressor pump should run.
    pub pump_on: bool,
    /// Whether the solenoid relief valve should be open.
    pub solenoid_open: bool,
}

/// A textbook PID controller with dead-band thresholding.
///
/// The continuous PID output `u = Kp e + Ki ∫e + Kd de/dt` is mapped onto the
/// binary actuators of the pipeline: under the *pump* scheme a positive `u`
/// beyond the dead band starts the compressor; under the *solenoid* scheme a
/// negative `u` beyond the dead band opens the relief valve.
#[derive(Debug, Clone)]
pub struct PidController {
    settings: PidSettings,
    integral: f64,
    last_error: Option<f64>,
}

impl PidController {
    /// Creates a controller with the given settings.
    pub fn new(settings: PidSettings) -> Self {
        PidController {
            settings,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Current settings.
    pub fn settings(&self) -> &PidSettings {
        &self.settings
    }

    /// Replaces the settings (an operator or attacker wrote new parameters)
    /// and resets the internal state.
    pub fn reconfigure(&mut self, settings: PidSettings) {
        self.settings = settings;
        self.reset();
    }

    /// Clears the integral and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// Computes the continuous control output for a pressure measurement.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn control_output(&mut self, pressure: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let s = &self.settings;
        let error = s.setpoint - pressure;
        // Anti-windup: clamp the integral to a sane band.
        self.integral = (self.integral + error * dt).clamp(-100.0, 100.0);
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        s.gain * error + s.reset_rate * self.integral + s.rate * derivative
    }

    /// Runs one control cycle and maps the output onto the actuators for the
    /// given control scheme.
    ///
    /// Within the dead band both actuators rest (pump off, valve closed).
    pub fn step(&mut self, pressure: f64, dt: f64, scheme: ControlScheme) -> ActuatorCommand {
        let u = self.control_output(pressure, dt);
        let half_band = self.settings.deadband / 2.0;
        match scheme {
            ControlScheme::Pump => ActuatorCommand {
                pump_on: u > half_band,
                solenoid_open: u < -half_band,
            },
            ControlScheme::Solenoid => ActuatorCommand {
                // The solenoid scheme holds the pump on and regulates by
                // venting excess pressure.
                pump_on: u > -half_band,
                solenoid_open: u < -half_band,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings() -> PidSettings {
        PidSettings {
            setpoint: 10.0,
            gain: 4.0,
            reset_rate: 0.5,
            deadband: 1.0,
            cycle_time: 1.0,
            rate: 0.1,
        }
    }

    #[test]
    fn below_setpoint_starts_pump() {
        let mut pid = PidController::new(settings());
        let cmd = pid.step(5.0, 1.0, ControlScheme::Pump);
        assert!(cmd.pump_on);
        assert!(!cmd.solenoid_open);
    }

    #[test]
    fn above_setpoint_opens_valve() {
        let mut pid = PidController::new(settings());
        let cmd = pid.step(15.0, 1.0, ControlScheme::Pump);
        assert!(!cmd.pump_on);
        assert!(cmd.solenoid_open);
    }

    #[test]
    fn inside_deadband_rests() {
        let mut pid = PidController::new(PidSettings {
            gain: 1.0,
            reset_rate: 0.0,
            rate: 0.0,
            deadband: 2.0,
            ..settings()
        });
        let cmd = pid.step(10.5, 1.0, ControlScheme::Pump);
        assert!(!cmd.pump_on);
        assert!(!cmd.solenoid_open);
    }

    #[test]
    fn solenoid_scheme_vents_over_pressure() {
        let mut pid = PidController::new(settings());
        let cmd = pid.step(15.0, 1.0, ControlScheme::Solenoid);
        assert!(cmd.solenoid_open);
        let mut pid = PidController::new(settings());
        let cmd = pid.step(9.8, 1.0, ControlScheme::Solenoid);
        assert!(cmd.pump_on);
        assert!(!cmd.solenoid_open);
    }

    #[test]
    fn integral_accumulates_persistent_error() {
        let mut pid = PidController::new(PidSettings {
            gain: 0.0,
            reset_rate: 1.0,
            rate: 0.0,
            ..settings()
        });
        let u1 = pid.control_output(9.0, 1.0);
        let u2 = pid.control_output(9.0, 1.0);
        assert!(u2 > u1, "integral term should grow: {u1} -> {u2}");
    }

    #[test]
    fn integral_is_clamped() {
        let mut pid = PidController::new(PidSettings {
            gain: 0.0,
            reset_rate: 1.0,
            rate: 0.0,
            ..settings()
        });
        for _ in 0..10_000 {
            pid.control_output(0.0, 1.0);
        }
        let u = pid.control_output(0.0, 1.0);
        assert!(u <= 100.0 * 10.0 + 1e9, "control output stays finite");
        assert!(u.is_finite());
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = PidController::new(PidSettings {
            gain: 0.0,
            reset_rate: 0.0,
            rate: 1.0,
            ..settings()
        });
        let _ = pid.control_output(10.0, 1.0); // error 0
        let u = pid.control_output(8.0, 1.0); // error jumps to +2
        assert!(u > 0.0);
    }

    #[test]
    fn reconfigure_resets_state() {
        let mut pid = PidController::new(settings());
        let _ = pid.control_output(0.0, 1.0);
        pid.reconfigure(settings());
        // Derivative history cleared: first output has no derivative kick.
        let u_fresh = PidController::new(settings()).control_output(5.0, 1.0);
        let u_after = pid.control_output(5.0, 1.0);
        assert!((u_fresh - u_after).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_converges_near_setpoint() {
        use crate::physics::{PhysicsConfig, PipelinePhysics};
        use rand::SeedableRng;
        use rand_chacha::ChaCha12Rng;

        let mut physics = PipelinePhysics::new(
            PhysicsConfig {
                noise_std: 0.01,
                ..PhysicsConfig::default()
            },
            0.0,
        );
        let mut pid = PidController::new(settings());
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut last = 0.0;
        for _ in 0..600 {
            let cmd = pid.step(physics.pressure(), 0.5, ControlScheme::Pump);
            last = physics.step(cmd.pump_on, cmd.solenoid_open, 0.5, &mut rng);
        }
        assert!(
            (last - 10.0).abs() < 2.5,
            "closed loop should settle near the 10 PSI setpoint, got {last}"
        );
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn non_positive_dt_panics() {
        PidController::new(settings()).control_output(1.0, 0.0);
    }
}
