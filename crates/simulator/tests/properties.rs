//! Property-based tests for the traffic simulator.

use icsad_modbus::Frame;
use icsad_simulator::traffic::{TrafficConfig, TrafficGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Captures are reproducible from their seed for any attack probability.
    #[test]
    fn capture_is_seed_deterministic(seed in any::<u64>(), attack in 0.0f64..0.4) {
        let config = TrafficConfig {
            seed,
            attack_probability: attack,
            ..TrafficConfig::default()
        };
        let a = TrafficGenerator::new(config.clone()).generate(400);
        let b = TrafficGenerator::new(config).generate(400);
        prop_assert_eq!(a, b);
    }

    /// Time is strictly monotone and every packet decodes leniently,
    /// regardless of seed and attack mix.
    #[test]
    fn packets_are_wellformed(seed in any::<u64>(), attack in 0.0f64..0.5) {
        let mut gen = TrafficGenerator::new(TrafficConfig {
            seed,
            attack_probability: attack,
            ..TrafficConfig::default()
        });
        let packets = gen.generate(600);
        let mut last = f64::NEG_INFINITY;
        for p in &packets {
            prop_assert!(p.time > last);
            last = p.time;
            let (frame, _) = Frame::decode_lenient(&p.wire).expect("decodable");
            prop_assert!(frame.encoded_len() == p.wire.len());
        }
    }

    /// With attacks disabled no packet is ever labelled.
    #[test]
    fn clean_captures_have_no_labels(seed in any::<u64>()) {
        let mut gen = TrafficGenerator::new(TrafficConfig {
            seed,
            attack_probability: 0.0,
            ..TrafficConfig::default()
        });
        prop_assert!(gen.generate(400).iter().all(|p| !p.is_attack()));
    }

    /// Physical plausibility: pressures reported in read responses stay
    /// within the mechanical safety bound for any seed.
    #[test]
    fn reported_pressures_bounded(seed in any::<u64>()) {
        use icsad_modbus::pipeline::decode_read_response;
        use icsad_modbus::FunctionCode;
        let config = TrafficConfig {
            seed,
            attack_probability: 0.05,
            ..TrafficConfig::default()
        };
        let max = config.physics.max_pressure;
        let mut gen = TrafficGenerator::new(config);
        for p in gen.generate(600) {
            if p.is_command {
                continue;
            }
            if let Ok((frame, true)) = Frame::decode_lenient(&p.wire) {
                if frame.function() == FunctionCode::ReadHoldingRegisters {
                    if let Ok(state) = decode_read_response(&frame) {
                        prop_assert!((0.0..=max + 1e-9).contains(&state.pressure));
                    }
                }
            }
        }
    }
}
