//! A minimal `f32` matrix and the kernels an LSTM needs.
//!
//! All hot paths operate on single sequences (batch size 1), so the kernels
//! are vector/matrix products laid out for sequential memory access:
//! weights are stored row-major with the *input* dimension as rows, making
//! `y += xᵀ·W` a series of axpy operations over contiguous rows.

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a 0-element tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `other` elementwise (used to merge per-thread gradients).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "tensor shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }
}

/// `y += xᵀ · w` where `w` is `(in × out)`, `x` has length `in` and `y` has
/// length `out`.
///
/// Skips zero entries of `x`, which makes one-hot inputs nearly free.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_acc(w: &Tensor2, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.rows(), x.len(), "matvec_acc: input length mismatch");
    assert_eq!(w.cols(), y.len(), "matvec_acc: output length mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = w.row(i);
        if xi == 1.0 {
            for (yj, &wj) in y.iter_mut().zip(row.iter()) {
                *yj += wj;
            }
        } else {
            for (yj, &wj) in y.iter_mut().zip(row.iter()) {
                *yj += xi * wj;
            }
        }
    }
}

/// `dx += w · dy` (the transpose product): `dx[i] += dot(w.row(i), dy)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_t_acc(w: &Tensor2, dy: &[f32], dx: &mut [f32]) {
    assert_eq!(w.rows(), dx.len(), "matvec_t_acc: input length mismatch");
    assert_eq!(w.cols(), dy.len(), "matvec_t_acc: output length mismatch");
    for (i, dxi) in dx.iter_mut().enumerate() {
        let row = w.row(i);
        let mut acc = 0.0f32;
        for (&wj, &dj) in row.iter().zip(dy.iter()) {
            acc += wj * dj;
        }
        *dxi += acc;
    }
}

/// Rank-1 update `dw += x ⊗ dy` (outer product accumulate).
///
/// Skips zero entries of `x` — the gradient of a one-hot input touches a
/// single row.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn outer_acc(dw: &mut Tensor2, x: &[f32], dy: &[f32]) {
    assert_eq!(dw.rows(), x.len(), "outer_acc: input length mismatch");
    assert_eq!(dw.cols(), dy.len(), "outer_acc: output length mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = dw.row_mut(i);
        if xi == 1.0 {
            for (wj, &dj) in row.iter_mut().zip(dy.iter()) {
                *wj += dj;
            }
        } else {
            for (wj, &dj) in row.iter_mut().zip(dy.iter()) {
                *wj += xi * dj;
            }
        }
    }
}

/// `y += a * x` over slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w23() -> Tensor2 {
        // 2x3: rows are inputs.
        Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matvec_matches_manual() {
        let w = w23();
        let mut y = vec![0.0; 3];
        matvec_acc(&w, &[10.0, 100.0], &mut y);
        assert_eq!(y, vec![410.0, 520.0, 630.0]);
    }

    #[test]
    fn matvec_accumulates() {
        let w = w23();
        let mut y = vec![1.0; 3];
        matvec_acc(&w, &[1.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_skips_zeros_correctly() {
        let w = w23();
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        matvec_acc(&w, &[0.0, 2.5], &mut a);
        matvec_acc(&w, &[1e-30, 2.5], &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matvec_t_matches_manual() {
        let w = w23();
        let mut dx = vec![0.0; 2];
        matvec_t_acc(&w, &[1.0, 0.0, 1.0], &mut dx);
        assert_eq!(dx, vec![4.0, 10.0]);
    }

    #[test]
    fn outer_product_matches_manual() {
        let mut dw = Tensor2::zeros(2, 3);
        outer_acc(&mut dw, &[2.0, 0.0], &[1.0, 2.0, 3.0]);
        assert_eq!(dw.as_slice(), &[2.0, 4.0, 6.0, 0.0, 0.0, 0.0]);
        outer_acc(&mut dw, &[1.0, 1.0], &[1.0, 1.0, 1.0]);
        assert_eq!(dw.as_slice(), &[3.0, 5.0, 7.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_consistency() {
        // <W x, y> == <x, W^T y> for random-ish data.
        let w = w23();
        let x = [0.3f32, -1.2];
        let y = [2.0f32, -0.5, 0.25];
        let mut wx = vec![0.0; 3];
        matvec_acc(&w, &x, &mut wx);
        let mut wty = vec![0.0; 2];
        matvec_t_acc(&w, &y, &mut wty);
        let lhs: f32 = wx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(wty.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Tensor2::zeros(2, 2);
        let mut b = Tensor2::zeros(2, 2);
        a.as_mut_slice()[0] = 1.0;
        b.as_mut_slice()[0] = 2.0;
        b.as_mut_slice()[3] = 5.0;
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn axpy_works() {
        let mut y = vec![1.0, 2.0];
        axpy(3.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![31.0, 62.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        let w = w23();
        let mut y = vec![0.0; 2];
        matvec_acc(&w, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn zero_and_from_vec() {
        let mut t = Tensor2::from_vec(1, 2, vec![1.0, 2.0]);
        t.zero();
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.cols(), 2);
        assert!(!t.is_empty());
    }
}
