//! A minimal `f32` matrix and the kernels an LSTM needs.
//!
//! All hot paths operate on single sequences (batch size 1), so the kernels
//! are vector/matrix products laid out for sequential memory access:
//! weights are stored row-major with the *input* dimension as rows, making
//! `y += xᵀ·W` a series of axpy operations over contiguous rows.

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a 0-element tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `other` elementwise (used to merge per-thread gradients).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "tensor shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }
}

/// Fused multiply-accumulate `acc + xv * wj`, taking the hardware FMA
/// instruction when the compilation target has one.
///
/// Rust never contracts `a + b * c` into an FMA on its own (contraction
/// changes rounding), which leaves half the floating-point throughput of
/// FMA hardware unused. All inference kernels — per-record and batched —
/// route through this one helper, so both paths round identically on every
/// target and their results stay comparable. Without hardware FMA the
/// plain two-op form is used (never the libm soft-float `fmaf`).
#[inline(always)]
fn fmac(acc: f32, xv: f32, wj: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        xv.mul_add(wj, acc)
    } else {
        acc + xv * wj
    }
}

/// `y += xᵀ · w` where `w` is `(in × out)`, `x` has length `in` and `y` has
/// length `out`.
///
/// Skips zero entries of `x`, which makes one-hot inputs nearly free.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_acc(w: &Tensor2, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.rows(), x.len(), "matvec_acc: input length mismatch");
    assert_eq!(w.cols(), y.len(), "matvec_acc: output length mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = w.row(i);
        if xi == 1.0 {
            // 1.0 * w rounds to w exactly: the plain add equals the fmac.
            for (yj, &wj) in y.iter_mut().zip(row.iter()) {
                *yj += wj;
            }
        } else {
            for (yj, &wj) in y.iter_mut().zip(row.iter()) {
                *yj = fmac(*yj, xi, wj);
            }
        }
    }
}

/// `dx += w · dy` (the transpose product): `dx[i] += dot(w.row(i), dy)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_t_acc(w: &Tensor2, dy: &[f32], dx: &mut [f32]) {
    assert_eq!(w.rows(), dx.len(), "matvec_t_acc: input length mismatch");
    assert_eq!(w.cols(), dy.len(), "matvec_t_acc: output length mismatch");
    for (i, dxi) in dx.iter_mut().enumerate() {
        let row = w.row(i);
        let mut acc = 0.0f32;
        for (&wj, &dj) in row.iter().zip(dy.iter()) {
            acc += wj * dj;
        }
        *dxi += acc;
    }
}

/// Rank-1 update `dw += x ⊗ dy` (outer product accumulate).
///
/// Skips zero entries of `x` — the gradient of a one-hot input touches a
/// single row.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn outer_acc(dw: &mut Tensor2, x: &[f32], dy: &[f32]) {
    assert_eq!(dw.rows(), x.len(), "outer_acc: input length mismatch");
    assert_eq!(dw.cols(), dy.len(), "outer_acc: output length mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = dw.row_mut(i);
        if xi == 1.0 {
            for (wj, &dj) in row.iter_mut().zip(dy.iter()) {
                *wj += dj;
            }
        } else {
            for (wj, &dj) in row.iter_mut().zip(dy.iter()) {
                *wj += xi * dj;
            }
        }
    }
}

/// Batched `matvec_acc`: `y[b] += x[b]ᵀ · w` for every row `b` of a
/// `batch × w.rows()` input block, accumulating into a `batch × w.cols()`
/// output block (both row-major slices).
///
/// This is the matrix–matrix product that lets `B` in-flight sequences step
/// through a layer together: each weight row is loaded once per `k` block
/// and reused by all `B` lanes instead of being re-streamed from memory `B`
/// times. Per output element the `k` contributions are accumulated in the
/// same ascending order as [`matvec_acc`], and zero entries of `x` are
/// skipped identically, so results are bit-identical to `B` separate
/// `matvec_acc` calls.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_acc(batch: usize, x: &[f32], w: &Tensor2, y: &mut [f32]) {
    let k_dim = w.rows();
    let n = w.cols();
    assert_eq!(x.len(), batch * k_dim, "gemm_acc: input block mismatch");
    assert_eq!(y.len(), batch * n, "gemm_acc: output block mismatch");
    // A block of weight rows (KB x n f32) stays cache-resident while every
    // lane accumulates against it.
    const KB: usize = 32;
    for kb in (0..k_dim).step_by(KB) {
        let kend = (kb + KB).min(k_dim);
        for b in 0..batch {
            let x_row = &x[b * k_dim..(b + 1) * k_dim];
            let y_row = &mut y[b * n..(b + 1) * n];
            for (k, &xi) in x_row[kb..kend].iter().enumerate().map(|(o, v)| (kb + o, v)) {
                if xi == 0.0 {
                    continue;
                }
                let w_row = w.row(k);
                if xi == 1.0 {
                    for (yj, &wj) in y_row.iter_mut().zip(w_row.iter()) {
                        *yj += wj;
                    }
                } else {
                    for (yj, &wj) in y_row.iter_mut().zip(w_row.iter()) {
                        *yj = fmac(*yj, xi, wj);
                    }
                }
            }
        }
    }
}

/// Register-blocked batched product for *dense* inputs:
/// `y[b] += x[b]ᵀ · w` like [`gemm_acc`], but without the zero-skip and
/// with the output tile held in registers across the whole `k` loop.
///
/// The axpy formulation of [`matvec_acc`]/[`gemm_acc`] performs one load +
/// one store of the output row per `k` step — fine for one-hot inputs
/// where almost every `k` is skipped, but store-bound for dense inputs
/// (recurrent state, hidden activations). Here a `LANE_TILE x J_TILE`
/// output tile accumulates in local arrays (registers after
/// vectorization), each weight row slice is loaded once and reused by
/// every lane of the tile, and stores happen once per tile instead of once
/// per `k`.
///
/// Per output element the `k` contributions are still accumulated in one
/// ascending chain, so results compare equal (`f32 ==`) to per-lane
/// [`matvec_acc`]; including `xi == 0` terms can only flip the sign of a
/// zero, which `==` and every downstream consumer treat identically.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_dense_acc(batch: usize, x: &[f32], w: &Tensor2, y: &mut [f32]) {
    let k_dim = w.rows();
    let n = w.cols();
    assert_eq!(
        x.len(),
        batch * k_dim,
        "gemm_dense_acc: input block mismatch"
    );
    assert_eq!(y.len(), batch * n, "gemm_dense_acc: output block mismatch");
    // One J_TILE f32 slice is a cache line; the k-major sweep over a fixed
    // column block touches one line per weight row, so the whole
    // `k_dim x J_TILE` block (a few KB) stays L1-resident while every lane
    // tile re-walks it — the weight matrix is streamed once per call, not
    // once per lane.
    const LANE_TILE: usize = 4;
    const J_TILE: usize = 32;
    let w_data = w.as_slice();

    // Packed copy of one weight column block, contiguous so the inner loop
    // walks it with exact-sized chunks and no per-row index math. Packing
    // streams W once per call; every lane tile then re-reads the pack from
    // L1. The buffer is thread-local so steady-state batched inference
    // allocates nothing.
    std::thread_local! {
        static PACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        if pack.len() < k_dim * J_TILE {
            pack.resize(k_dim * J_TILE, 0.0);
        }
        let pack = &mut pack[..k_dim * J_TILE];
        let mut j0 = 0;
        while j0 < n {
            let jb = J_TILE.min(n - j0);
            if jb == J_TILE {
                for (k, dst) in pack.chunks_exact_mut(J_TILE).enumerate() {
                    dst.copy_from_slice(&w_data[k * n + j0..k * n + j0 + J_TILE]);
                }
                let mut b0 = 0;
                // Quads of lanes take the register-tiled fast path.
                while b0 + LANE_TILE <= batch {
                    let (x01, x23) = x[b0 * k_dim..(b0 + 4) * k_dim].split_at(2 * k_dim);
                    let (x0, x1) = x01.split_at(k_dim);
                    let (x2, x3) = x23.split_at(k_dim);
                    let mut acc = [[0.0f32; J_TILE]; LANE_TILE];
                    for (bi, acc_row) in acc.iter_mut().enumerate() {
                        acc_row
                            .copy_from_slice(&y[(b0 + bi) * n + j0..(b0 + bi) * n + j0 + J_TILE]);
                    }
                    let lanes = x0.iter().zip(x1.iter()).zip(x2.iter()).zip(x3.iter());
                    for ((((&a0, &a1), &a2), &a3), w_slice) in lanes.zip(pack.chunks_exact(J_TILE))
                    {
                        let ws: &[f32; J_TILE] = w_slice.try_into().expect("packed column tile");
                        for (a, &wj) in acc[0].iter_mut().zip(ws.iter()) {
                            *a = fmac(*a, a0, wj);
                        }
                        for (a, &wj) in acc[1].iter_mut().zip(ws.iter()) {
                            *a = fmac(*a, a1, wj);
                        }
                        for (a, &wj) in acc[2].iter_mut().zip(ws.iter()) {
                            *a = fmac(*a, a2, wj);
                        }
                        for (a, &wj) in acc[3].iter_mut().zip(ws.iter()) {
                            *a = fmac(*a, a3, wj);
                        }
                    }
                    for (bi, acc_row) in acc.iter().enumerate() {
                        y[(b0 + bi) * n + j0..(b0 + bi) * n + j0 + J_TILE].copy_from_slice(acc_row);
                    }
                    b0 += LANE_TILE;
                }
                // Leftover lanes, one at a time on the same column tile.
                for b in b0..batch {
                    let x_row = &x[b * k_dim..(b + 1) * k_dim];
                    let mut acc = [0.0f32; J_TILE];
                    acc.copy_from_slice(&y[b * n + j0..b * n + j0 + J_TILE]);
                    for (&xv, w_slice) in x_row.iter().zip(pack.chunks_exact(J_TILE)) {
                        let ws: &[f32; J_TILE] = w_slice.try_into().expect("packed column tile");
                        for (a, &wj) in acc.iter_mut().zip(ws.iter()) {
                            *a = fmac(*a, xv, wj);
                        }
                    }
                    y[b * n + j0..b * n + j0 + J_TILE].copy_from_slice(&acc);
                }
            } else {
                // Ragged trailing columns: plain per-element chains.
                for b in 0..batch {
                    let x_row = &x[b * k_dim..(b + 1) * k_dim];
                    for jj in j0..j0 + jb {
                        let mut a = y[b * n + jj];
                        for (k, &xv) in x_row.iter().enumerate() {
                            a = fmac(a, xv, w_data[k * n + jj]);
                        }
                        y[b * n + jj] = a;
                    }
                }
            }
            j0 += jb;
        }
    });
}

/// `y += a * x` over slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w23() -> Tensor2 {
        // 2x3: rows are inputs.
        Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matvec_matches_manual() {
        let w = w23();
        let mut y = vec![0.0; 3];
        matvec_acc(&w, &[10.0, 100.0], &mut y);
        assert_eq!(y, vec![410.0, 520.0, 630.0]);
    }

    #[test]
    fn matvec_accumulates() {
        let w = w23();
        let mut y = vec![1.0; 3];
        matvec_acc(&w, &[1.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_skips_zeros_correctly() {
        let w = w23();
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        matvec_acc(&w, &[0.0, 2.5], &mut a);
        matvec_acc(&w, &[1e-30, 2.5], &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matvec_t_matches_manual() {
        let w = w23();
        let mut dx = vec![0.0; 2];
        matvec_t_acc(&w, &[1.0, 0.0, 1.0], &mut dx);
        assert_eq!(dx, vec![4.0, 10.0]);
    }

    #[test]
    fn outer_product_matches_manual() {
        let mut dw = Tensor2::zeros(2, 3);
        outer_acc(&mut dw, &[2.0, 0.0], &[1.0, 2.0, 3.0]);
        assert_eq!(dw.as_slice(), &[2.0, 4.0, 6.0, 0.0, 0.0, 0.0]);
        outer_acc(&mut dw, &[1.0, 1.0], &[1.0, 1.0, 1.0]);
        assert_eq!(dw.as_slice(), &[3.0, 5.0, 7.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_consistency() {
        // <W x, y> == <x, W^T y> for random-ish data.
        let w = w23();
        let x = [0.3f32, -1.2];
        let y = [2.0f32, -0.5, 0.25];
        let mut wx = vec![0.0; 3];
        matvec_acc(&w, &x, &mut wx);
        let mut wty = vec![0.0; 2];
        matvec_t_acc(&w, &y, &mut wty);
        let lhs: f32 = wx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(wty.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Tensor2::zeros(2, 2);
        let mut b = Tensor2::zeros(2, 2);
        a.as_mut_slice()[0] = 1.0;
        b.as_mut_slice()[0] = 2.0;
        b.as_mut_slice()[3] = 5.0;
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn axpy_works() {
        let mut y = vec![1.0, 2.0];
        axpy(3.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![31.0, 62.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        let w = w23();
        let mut y = vec![0.0; 2];
        matvec_acc(&w, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn gemm_matches_per_row_matvec_bitwise() {
        // 80 input rows > the internal k block, 7 lanes, mixed zeros/ones.
        let w = Tensor2::from_vec(
            80,
            5,
            (0..400)
                .map(|i| ((i * 37 % 101) as f32 - 50.0) / 13.0)
                .collect(),
        );
        let x: Vec<f32> = (0..7 * 80)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => 1.0,
                _ => ((i * 29 % 83) as f32 - 41.0) / 7.0,
            })
            .collect();
        let mut batched = vec![0.25f32; 7 * 5];
        gemm_acc(7, &x, &w, &mut batched);
        for b in 0..7 {
            let mut single = vec![0.25f32; 5];
            matvec_acc(&w, &x[b * 80..(b + 1) * 80], &mut single);
            assert_eq!(&batched[b * 5..(b + 1) * 5], single.as_slice(), "lane {b}");
        }
    }

    #[test]
    fn gemm_dense_matches_per_row_matvec() {
        // Sizes straddling the tile boundaries: 70 inputs, 37 outputs,
        // 6 lanes (one partial lane tile, partial j tile).
        let w = Tensor2::from_vec(
            70,
            37,
            (0..70 * 37)
                .map(|i| ((i * 53 % 211) as f32 - 105.0) / 29.0)
                .collect(),
        );
        let x: Vec<f32> = (0..6 * 70)
            .map(|i| match i % 7 {
                0 => 0.0, // exact zeros exercise the no-skip equivalence
                1 => 1.0,
                _ => ((i * 41 % 173) as f32 - 86.0) / 23.0,
            })
            .collect();
        // Non-zero initial contents stand in for a preloaded bias.
        let mut batched: Vec<f32> = (0..6 * 37).map(|i| (i % 5) as f32 - 2.0).collect();
        let reference = batched.clone();
        gemm_dense_acc(6, &x, &w, &mut batched);
        for b in 0..6 {
            let mut single = reference[b * 37..(b + 1) * 37].to_vec();
            matvec_acc(&w, &x[b * 70..(b + 1) * 70], &mut single);
            assert_eq!(
                &batched[b * 37..(b + 1) * 37],
                single.as_slice(),
                "lane {b}"
            );
        }
    }

    #[test]
    fn gemm_dense_empty_batch_is_noop() {
        let w = w23();
        let mut y: Vec<f32> = vec![];
        gemm_dense_acc(0, &[], &w, &mut y);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "gemm_dense_acc")]
    fn gemm_dense_rejects_bad_block() {
        let w = w23();
        let mut y = vec![0.0; 3];
        gemm_dense_acc(2, &[1.0, 2.0, 3.0], &w, &mut y);
    }

    #[test]
    fn gemm_empty_batch_is_noop() {
        let w = w23();
        let mut y: Vec<f32> = vec![];
        gemm_acc(0, &[], &w, &mut y);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "gemm_acc")]
    fn gemm_rejects_bad_block() {
        let w = w23();
        let mut y = vec![0.0; 3];
        gemm_acc(2, &[1.0, 2.0, 3.0], &w, &mut y);
    }

    #[test]
    fn zero_and_from_vec() {
        let mut t = Tensor2::from_vec(1, 2, vec![1.0, 2.0]);
        t.zero();
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.cols(), 2);
        assert!(!t.is_empty());
    }
}
