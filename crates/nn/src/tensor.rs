//! A minimal `f32` matrix and the kernels an LSTM needs.
//!
//! The forward (inference) kernels — [`matvec_acc`], [`gemm_acc`],
//! [`gemm_dense_acc`], [`axpy`] — are thin shape-checked fronts over the
//! runtime-dispatched SIMD kernel layer in [`icsad_simd`]: one backend
//! (scalar / SSE2 / AVX2+FMA / AVX-512) is selected per process by CPU
//! detection, and every backend produces bitwise-identical results under
//! the dispatched FMA policy (pinned by `icsad-simd`'s parity proptests).
//! Weights are stored row-major with the *input* dimension as rows, so
//! `y += xᵀ·W` walks contiguous weight rows and vectorizes along the
//! output columns only — every `y[j]` accumulates its `k` contributions in
//! ascending order, which keeps batched ≡ per-record bit-identical.
//!
//! The backward (training) kernels — [`matvec_t_acc`], [`outer_acc`] — ride
//! the same dispatched layer: the data gradient contracts over a packed
//! **transposed** weight view (see [`transpose_into`]; refreshed once per
//! optimizer step by the trainer) so it reuses the register-tiled dense
//! gemm, and the weight gradient is the batched outer product
//! `dW += Xᵀ·dY` with the sparse kernel's zero-skip. Both keep the
//! ascending-contraction order, so SIMD ≡ scalar stays bitwise for
//! training too.

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a 0-element tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `other` elementwise (used to merge per-thread gradients).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "tensor shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }
}

/// `y += xᵀ · w` where `w` is `(in × out)`, `x` has length `in` and `y` has
/// length `out`.
///
/// Skips zero entries of `x`, which makes one-hot inputs nearly free.
///
/// Whether `acc + x·w` contracts into a fused multiply-add used to be a
/// compile-time `cfg!(target_feature = "fma")` decision; it now travels
/// with the runtime-dispatched backend ([`icsad_simd::current`]), so a
/// portable binary on FMA hardware rounds identically on the scalar and
/// SIMD paths (`mul_add` is correctly rounded with or without the
/// hardware instruction).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_acc(w: &Tensor2, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.rows(), x.len(), "matvec_acc: input length mismatch");
    assert_eq!(w.cols(), y.len(), "matvec_acc: output length mismatch");
    icsad_simd::gemm_acc_f32(1, x, w.rows(), w.as_slice(), w.cols(), y);
}

/// Writes the transpose of `w` into `wt` (`wt[j][i] = w[i][j]`), resizing
/// `wt` if its shape differs. The backward kernels contract over weight
/// *columns*; handing them a packed transposed view keeps their memory
/// walks contiguous and their vectorization along the independent output
/// dimension. The trainer refreshes these views once per optimizer step.
pub fn transpose_into(w: &Tensor2, wt: &mut Tensor2) {
    if (wt.rows, wt.cols) != (w.cols, w.rows) {
        *wt = Tensor2::zeros(w.cols, w.rows);
    }
    for (i, row) in w.data.chunks_exact(w.cols).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            wt.data[j * w.rows + i] = v;
        }
    }
}

/// Batched transpose product `dx[b] += dy[b] · wᵀ` over a packed
/// transposed weight view `wt` (`out × in`, as produced by
/// [`transpose_into`] from the forward `in × out` matrix): row-major
/// `batch × out` gradients into a `batch × in` block.
///
/// This is the data-gradient half of backprop. The historical scalar
/// version walked one serial dot product per input — an unvectorizable
/// reduction chain; over the transposed view it becomes the same
/// register-tiled dense gemm the forward path uses, bitwise-identical
/// across SIMD backends per FMA policy.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matvec_t_acc(batch: usize, dy: &[f32], wt: &Tensor2, dx: &mut [f32]) {
    let n = wt.rows();
    let in_dim = wt.cols();
    assert_eq!(dy.len(), batch * n, "matvec_t_acc: gradient block mismatch");
    assert_eq!(
        dx.len(),
        batch * in_dim,
        "matvec_t_acc: output block mismatch"
    );
    icsad_simd::matvec_t_acc_f32(batch, dy, n, wt.as_slice(), in_dim, dx);
}

/// Batched outer-product accumulate `dw += Xᵀ·dY`: `batch` row-major
/// input rows (`batch × dw.rows()`) against `batch` gradient rows
/// (`batch × dw.cols()`). With `batch == 1` this is the rank-1 update
/// `dw += x ⊗ dy`.
///
/// Skips zero entries of `x` — the gradient of a one-hot input touches a
/// single row per batch entry — and accumulates each element's batch
/// contributions in ascending order on every backend.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn outer_acc(batch: usize, x: &[f32], dy: &[f32], dw: &mut Tensor2) {
    assert_eq!(
        x.len(),
        batch * dw.rows(),
        "outer_acc: input block mismatch"
    );
    assert_eq!(
        dy.len(),
        batch * dw.cols(),
        "outer_acc: gradient block mismatch"
    );
    let (rows, cols) = (dw.rows(), dw.cols());
    icsad_simd::outer_acc_f32(batch, x, rows, dy, cols, dw.as_mut_slice());
}

/// Batched `matvec_acc`: `y[b] += x[b]ᵀ · w` for every row `b` of a
/// `batch × w.rows()` input block, accumulating into a `batch × w.cols()`
/// output block (both row-major slices).
///
/// This is the matrix–matrix product that lets `B` in-flight sequences
/// step through a layer together. Per output element the `k` contributions
/// are accumulated in the same ascending order as [`matvec_acc`], and zero
/// entries of `x` are skipped identically, so results are bit-identical to
/// `B` separate `matvec_acc` calls — on every SIMD backend, which
/// vectorizes along the output columns only.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_acc(batch: usize, x: &[f32], w: &Tensor2, y: &mut [f32]) {
    let k_dim = w.rows();
    let n = w.cols();
    assert_eq!(x.len(), batch * k_dim, "gemm_acc: input block mismatch");
    assert_eq!(y.len(), batch * n, "gemm_acc: output block mismatch");
    icsad_simd::gemm_acc_f32(batch, x, k_dim, w.as_slice(), n, y);
}

/// Register-blocked batched product for *dense* inputs:
/// `y[b] += x[b]ᵀ · w` like [`gemm_acc`], but without the zero-skip and
/// with the output tile held in registers across the whole `k` loop.
///
/// The axpy formulation of [`matvec_acc`]/[`gemm_acc`] performs one load +
/// one store of the output row per `k` step — fine for one-hot inputs
/// where almost every `k` is skipped, but store-bound for dense inputs
/// (recurrent state, hidden activations). The dispatched kernel
/// ([`icsad_simd::gemm_dense_acc_f32`]) holds a register tile of four
/// lanes × two vectors over a packed weight column block, so each packed
/// weight vector is loaded once per tile and output stores happen once per
/// tile instead of once per `k`.
///
/// Per output element the `k` contributions are still accumulated in one
/// ascending chain, so results compare equal (`f32 ==`) to per-lane
/// [`matvec_acc`]; including `xi == 0` terms can only flip the sign of a
/// zero, which `==` and every downstream consumer treat identically.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_dense_acc(batch: usize, x: &[f32], w: &Tensor2, y: &mut [f32]) {
    let k_dim = w.rows();
    let n = w.cols();
    assert_eq!(
        x.len(),
        batch * k_dim,
        "gemm_dense_acc: input block mismatch"
    );
    assert_eq!(y.len(), batch * n, "gemm_dense_acc: output block mismatch");
    icsad_simd::gemm_dense_acc_f32(batch, x, k_dim, w.as_slice(), n, y);
}

/// `y += a * x` over slices (under the dispatched FMA policy).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    icsad_simd::axpy_f32(a, x, y);
}

/// Grows a pooled scratch buffer to at least `n` elements (never shrinks,
/// so one buffer serves its high-water mark without reallocating). Callers
/// must treat retained contents as garbage and overwrite or zero the
/// region they use.
pub(crate) fn grow(v: &mut Vec<f32>, n: usize) {
    if v.len() < n {
        v.resize(n, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w23() -> Tensor2 {
        // 2x3: rows are inputs.
        Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matvec_matches_manual() {
        let w = w23();
        let mut y = vec![0.0; 3];
        matvec_acc(&w, &[10.0, 100.0], &mut y);
        assert_eq!(y, vec![410.0, 520.0, 630.0]);
    }

    #[test]
    fn matvec_accumulates() {
        let w = w23();
        let mut y = vec![1.0; 3];
        matvec_acc(&w, &[1.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_skips_zeros_correctly() {
        let w = w23();
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        matvec_acc(&w, &[0.0, 2.5], &mut a);
        matvec_acc(&w, &[1e-30, 2.5], &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_into_flips_and_resizes() {
        let w = w23();
        let mut wt = Tensor2::zeros(1, 1);
        transpose_into(&w, &mut wt);
        assert_eq!((wt.rows(), wt.cols()), (3, 2));
        assert_eq!(wt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn matvec_t_matches_manual() {
        let w = w23();
        let mut wt = Tensor2::zeros(3, 2);
        transpose_into(&w, &mut wt);
        let mut dx = vec![0.0; 2];
        matvec_t_acc(1, &[1.0, 0.0, 1.0], &wt, &mut dx);
        assert_eq!(dx, vec![4.0, 10.0]);
    }

    #[test]
    fn matvec_t_batches_rows_independently() {
        let w = w23();
        let mut wt = Tensor2::zeros(3, 2);
        transpose_into(&w, &mut wt);
        let dy = [1.0, 0.0, 1.0, 0.0, 2.0, 0.0];
        let mut dx = vec![0.0; 4];
        matvec_t_acc(2, &dy, &wt, &mut dx);
        assert_eq!(dx, vec![4.0, 10.0, 4.0, 10.0]);
    }

    #[test]
    fn outer_product_matches_manual() {
        let mut dw = Tensor2::zeros(2, 3);
        outer_acc(1, &[2.0, 0.0], &[1.0, 2.0, 3.0], &mut dw);
        assert_eq!(dw.as_slice(), &[2.0, 4.0, 6.0, 0.0, 0.0, 0.0]);
        outer_acc(1, &[1.0, 1.0], &[1.0, 1.0, 1.0], &mut dw);
        assert_eq!(dw.as_slice(), &[3.0, 5.0, 7.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn outer_product_batch_sums_rank_one_updates() {
        let mut batched = Tensor2::zeros(2, 3);
        outer_acc(
            2,
            &[2.0, 0.0, 1.0, 1.0],
            &[1.0, 2.0, 3.0, 1.0, 1.0, 1.0],
            &mut batched,
        );
        assert_eq!(batched.as_slice(), &[3.0, 5.0, 7.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn transpose_consistency() {
        // <W x, y> == <x, W^T y> for random-ish data.
        let w = w23();
        let mut wt = Tensor2::zeros(3, 2);
        transpose_into(&w, &mut wt);
        let x = [0.3f32, -1.2];
        let y = [2.0f32, -0.5, 0.25];
        let mut wx = vec![0.0; 3];
        matvec_acc(&w, &x, &mut wx);
        let mut wty = vec![0.0; 2];
        matvec_t_acc(1, &y, &wt, &mut wty);
        let lhs: f32 = wx.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(wty.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = Tensor2::zeros(2, 2);
        let mut b = Tensor2::zeros(2, 2);
        a.as_mut_slice()[0] = 1.0;
        b.as_mut_slice()[0] = 2.0;
        b.as_mut_slice()[3] = 5.0;
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn axpy_works() {
        let mut y = vec![1.0, 2.0];
        axpy(3.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![31.0, 62.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        let w = w23();
        let mut y = vec![0.0; 2];
        matvec_acc(&w, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn gemm_matches_per_row_matvec_bitwise() {
        // 80 input rows > the internal k block, 7 lanes, mixed zeros/ones.
        let w = Tensor2::from_vec(
            80,
            5,
            (0..400)
                .map(|i| ((i * 37 % 101) as f32 - 50.0) / 13.0)
                .collect(),
        );
        let x: Vec<f32> = (0..7 * 80)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => 1.0,
                _ => ((i * 29 % 83) as f32 - 41.0) / 7.0,
            })
            .collect();
        let mut batched = vec![0.25f32; 7 * 5];
        gemm_acc(7, &x, &w, &mut batched);
        for b in 0..7 {
            let mut single = vec![0.25f32; 5];
            matvec_acc(&w, &x[b * 80..(b + 1) * 80], &mut single);
            assert_eq!(&batched[b * 5..(b + 1) * 5], single.as_slice(), "lane {b}");
        }
    }

    #[test]
    fn gemm_dense_matches_per_row_matvec() {
        // Sizes straddling the tile boundaries: 70 inputs, 37 outputs,
        // 6 lanes (one partial lane tile, partial j tile).
        let w = Tensor2::from_vec(
            70,
            37,
            (0..70 * 37)
                .map(|i| ((i * 53 % 211) as f32 - 105.0) / 29.0)
                .collect(),
        );
        let x: Vec<f32> = (0..6 * 70)
            .map(|i| match i % 7 {
                0 => 0.0, // exact zeros exercise the no-skip equivalence
                1 => 1.0,
                _ => ((i * 41 % 173) as f32 - 86.0) / 23.0,
            })
            .collect();
        // Non-zero initial contents stand in for a preloaded bias.
        let mut batched: Vec<f32> = (0..6 * 37).map(|i| (i % 5) as f32 - 2.0).collect();
        let reference = batched.clone();
        gemm_dense_acc(6, &x, &w, &mut batched);
        for b in 0..6 {
            let mut single = reference[b * 37..(b + 1) * 37].to_vec();
            matvec_acc(&w, &x[b * 70..(b + 1) * 70], &mut single);
            assert_eq!(
                &batched[b * 37..(b + 1) * 37],
                single.as_slice(),
                "lane {b}"
            );
        }
    }

    #[test]
    fn gemm_dense_empty_batch_is_noop() {
        let w = w23();
        let mut y: Vec<f32> = vec![];
        gemm_dense_acc(0, &[], &w, &mut y);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "gemm_dense_acc")]
    fn gemm_dense_rejects_bad_block() {
        let w = w23();
        let mut y = vec![0.0; 3];
        gemm_dense_acc(2, &[1.0, 2.0, 3.0], &w, &mut y);
    }

    #[test]
    fn gemm_empty_batch_is_noop() {
        let w = w23();
        let mut y: Vec<f32> = vec![];
        gemm_acc(0, &[], &w, &mut y);
        assert!(y.is_empty());
    }

    #[test]
    #[should_panic(expected = "gemm_acc")]
    fn gemm_rejects_bad_block() {
        let w = w23();
        let mut y = vec![0.0; 3];
        gemm_acc(2, &[1.0, 2.0, 3.0], &w, &mut y);
    }

    #[test]
    fn zero_and_from_vec() {
        let mut t = Tensor2::from_vec(1, 2, vec![1.0, 2.0]);
        t.zero();
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.cols(), 2);
        assert!(!t.is_empty());
    }
}
