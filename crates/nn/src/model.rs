//! The stacked LSTM softmax classifier (paper Fig. 2).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::activations::softmax_in_place;
use crate::dense::{Dense, DenseGrad};
use crate::loss::{in_top_k, softmax_cross_entropy, softmax_cross_entropy_grad};
use crate::lstm::{BpttScratch, LaneSchedule, LayerTape, LstmLayer, LstmState};
use crate::tensor::{grow, transpose_into, Tensor2};

/// Architecture of the classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Dimensionality of the one-hot encoded input vectors.
    pub input_dim: usize,
    /// Hidden width of each stacked LSTM layer (the paper uses `[256, 256]`).
    pub hidden_dims: Vec<usize>,
    /// Number of output classes (`|S|`, the signature-database size).
    pub num_classes: usize,
    /// Seed for parameter initialization.
    pub seed: u64,
}

/// The stacked LSTM network with a softmax head: given the discretized
/// (one-hot) feature vectors of previous packages it outputs
/// `Pr(s | c^{(t-1)}, c^{(t-2)}, …)` for every signature `s` in the
/// database.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmClassifier {
    config: ModelConfig,
    layers: Vec<LstmLayer>,
    dense: Dense,
}

/// Gradients for every parameter of an [`LstmClassifier`].
#[derive(Debug, Clone)]
pub struct Gradients {
    pub(crate) layers: Vec<crate::lstm::LstmGrad>,
    pub(crate) dense: DenseGrad,
}

impl Gradients {
    /// Merges gradients computed by a parallel worker.
    pub fn add_assign(&mut self, other: &Gradients) {
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.add_assign(b);
        }
        self.dense.add_assign(&other.dense);
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        for l in &mut self.layers {
            l.zero();
        }
        self.dense.zero();
    }

    /// Global L2 norm over all gradient entries.
    pub fn global_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        self.visit(|slice| {
            for &g in slice {
                acc += f64::from(g) * f64::from(g);
            }
        });
        acc.sqrt() as f32
    }

    /// Scales all gradients by `s`.
    pub fn scale(&mut self, s: f32) {
        self.visit_mut(|slice| {
            for g in slice {
                *g *= s;
            }
        });
    }

    fn visit(&self, mut f: impl FnMut(&[f32])) {
        for l in &self.layers {
            f(l.w.as_slice());
            f(l.u.as_slice());
            f(&l.b);
        }
        f(self.dense.w.as_slice());
        f(&self.dense.b);
    }

    fn visit_mut(&mut self, mut f: impl FnMut(&mut [f32])) {
        for l in &mut self.layers {
            f(l.w.as_mut_slice());
            f(l.u.as_mut_slice());
            f(&mut l.b);
        }
        f(self.dense.w.as_mut_slice());
        f(&mut self.dense.b);
    }
}

/// Streaming state for online (stateful) prediction: one `(h, c)` pair per
/// layer.
///
/// The `Default` state is a *hollow* placeholder (no layers): callers that
/// move a real state elsewhere (e.g. into a partitioned classification
/// round) can leave one behind with `mem::replace` without allocating.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamState {
    layers: Vec<LstmState>,
    /// Scratch buffers reused across steps.
    scratch: Vec<Vec<f32>>,
}

/// Reusable buffers for [`LstmClassifier::forward_batch`]: gathered
/// per-layer state blocks plus gate scratch, grown on demand so one scratch
/// serves any batch size up to the high-water mark without reallocating.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Per-layer gathered hidden state, `capacity x hidden_dims[l]`.
    h: Vec<Vec<f32>>,
    /// Per-layer gathered cell state, `capacity x hidden_dims[l]`.
    c: Vec<Vec<f32>>,
    /// Per-layer gate preactivations, `capacity x 4*hidden_dims[l]`.
    z: Vec<Vec<f32>>,
    /// Lanes the buffers currently accommodate.
    capacity: usize,
}

impl StreamState {
    /// The per-layer recurrent `(h, c)` states, bottom layer first.
    pub fn layer_states(&self) -> &[LstmState] {
        &self.layers
    }
}

/// Packed transposed views of every weight matrix, consumed by the
/// backward kernels (`dX = dY Wᵀ` contracts over weight *columns*; over
/// the transposed copy it reuses the register-tiled forward gemm).
///
/// The pack is intentionally **not** stored inside [`LstmClassifier`]:
/// it is derived data that must be rebuilt whenever the weights change.
/// Build one with [`BackwardPack::new`] and call
/// [`BackwardPack::refresh`] after every optimizer step.
#[derive(Debug, Clone)]
pub struct BackwardPack {
    layers: Vec<LayerPack>,
    dense_wt: Tensor2,
}

#[derive(Debug, Clone)]
struct LayerPack {
    /// Transpose of the layer's input weights, `4H x in`.
    wt: Tensor2,
    /// Transpose of the layer's recurrent weights, `4H x H`.
    ut: Tensor2,
}

impl BackwardPack {
    /// Builds the transposed views of `model`'s current weights.
    pub fn new(model: &LstmClassifier) -> Self {
        let mut pack = BackwardPack {
            layers: model
                .layers
                .iter()
                .map(|_| LayerPack {
                    wt: Tensor2::zeros(1, 1),
                    ut: Tensor2::zeros(1, 1),
                })
                .collect(),
            dense_wt: Tensor2::zeros(1, 1),
        };
        pack.refresh(model);
        pack
    }

    /// Re-packs the transposed views from `model`'s current weights.
    ///
    /// # Panics
    ///
    /// Panics if `model` has a different layer count than the model the
    /// pack was built from.
    pub fn refresh(&mut self, model: &LstmClassifier) {
        assert_eq!(
            self.layers.len(),
            model.layers.len(),
            "layer count mismatch"
        );
        for (lp, layer) in self.layers.iter_mut().zip(model.layers.iter()) {
            transpose_into(&layer.w, &mut lp.wt);
            transpose_into(&layer.u, &mut lp.ut);
        }
        transpose_into(&model.dense.w, &mut self.dense_wt);
    }
}

/// Pooled buffers for [`LstmClassifier::train_batch`]: the concatenated
/// input block, per-layer BPTT tapes, the logits blocks and the backward
/// scratch. Grows to the largest minibatch seen and is reused across
/// chunks, so steady-state training does no allocation.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    /// Lane indices sorted longest-first.
    order: Vec<usize>,
    /// Concatenated inputs, `total x input_dim`.
    x_cat: Vec<f32>,
    /// One forward tape per layer.
    tapes: Vec<LayerTape>,
    /// Concatenated logits / probabilities, `total x num_classes`.
    logits: Vec<f32>,
    /// Concatenated logits gradient, `total x num_classes`.
    dlogits: Vec<f32>,
    /// Hidden-gradient ping-pong buffers, `total x max_dim`.
    d_a: Vec<f32>,
    d_b: Vec<f32>,
    /// Per-layer backward scratch (shared, grown to the largest layer).
    bptt: BpttScratch,
}

/// One lane of a training minibatch, borrowing the caller's storage.
enum LaneData<'a> {
    /// A chunk of [`crate::Sequence`] steps.
    Packed(&'a [(Vec<f32>, usize)]),
    /// Parallel input/target slices (the [`LstmClassifier::train_sequence`]
    /// calling convention).
    Split(&'a [Vec<f32>], &'a [usize]),
}

impl LaneData<'_> {
    fn len(&self) -> usize {
        match self {
            LaneData::Packed(steps) => steps.len(),
            LaneData::Split(inputs, _) => inputs.len(),
        }
    }

    fn input(&self, t: usize) -> &[f32] {
        match self {
            LaneData::Packed(steps) => &steps[t].0,
            LaneData::Split(inputs, _) => &inputs[t],
        }
    }

    fn target(&self, t: usize) -> usize {
        match self {
            LaneData::Packed(steps) => steps[t].1,
            LaneData::Split(_, targets) => targets[t],
        }
    }
}

impl LstmClassifier {
    /// Builds a randomly initialized classifier.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden_dims` is empty.
    pub fn new(config: &ModelConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.num_classes > 0, "num_classes must be positive");
        assert!(
            !config.hidden_dims.is_empty(),
            "need at least one LSTM layer"
        );
        let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.hidden_dims.len());
        let mut in_dim = config.input_dim;
        for &h in &config.hidden_dims {
            layers.push(LstmLayer::new(in_dim, h, &mut rng));
            in_dim = h;
        }
        let dense = Dense::new(in_dim, config.num_classes, &mut rng);
        LstmClassifier {
            config: config.clone(),
            layers,
            dense,
        }
    }

    /// The architecture.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Total learnable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum::<usize>() + self.dense.param_count()
    }

    /// Approximate model memory in bytes (parameters only, `f32`).
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Zero gradients shaped like this model.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            layers: self.layers.iter().map(|l| l.zero_grad()).collect(),
            dense: self.dense.zero_grad(),
        }
    }

    /// Fresh zeroed streaming state.
    pub fn new_state(&self) -> StreamState {
        StreamState {
            layers: self
                .config
                .hidden_dims
                .iter()
                .map(|&h| LstmState::zeros(h))
                .collect(),
            scratch: self
                .config
                .hidden_dims
                .iter()
                .map(|&h| vec![0.0; h])
                .collect(),
        }
    }

    /// Feeds one input vector through the network, updating the streaming
    /// state and writing the class probability distribution into `probs`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim` or `probs.len() != num_classes`.
    pub fn step(&self, state: &mut StreamState, x: &[f32], probs: &mut [f32]) {
        self.step_logits(state, x, probs);
        softmax_in_place(probs);
    }

    /// Like [`LstmClassifier::step`] but leaves the raw logits in `out`
    /// (no softmax). Softmax is strictly monotone, so top-`k` membership
    /// and ranks computed on logits equal those computed on probabilities —
    /// detection hot paths use this variant and skip `num_classes`
    /// exponentials per package.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim` or `out.len() != num_classes`.
    pub fn step_logits(&self, state: &mut StreamState, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.config.input_dim, "input dim mismatch");
        assert_eq!(out.len(), self.config.num_classes, "probs len mismatch");
        let num_layers = self.layers.len();
        for l in 0..num_layers {
            if l == 0 {
                let h_out = &mut state.scratch[0];
                self.layers[0].forward(x, &mut state.layers[0], h_out);
            } else {
                // scratch[l-1] (the previous layer's output) and scratch[l]
                // are disjoint borrows.
                let (below, at) = state.scratch.split_at_mut(l);
                self.layers[l].forward(&below[l - 1], &mut state.layers[l], &mut at[0]);
            }
        }
        self.dense.forward(&state.scratch[num_layers - 1], out);
    }

    /// Fresh (empty) scratch for [`LstmClassifier::forward_batch`].
    pub fn batch_scratch(&self) -> BatchScratch {
        BatchScratch {
            h: vec![Vec::new(); self.layers.len()],
            c: vec![Vec::new(); self.layers.len()],
            z: vec![Vec::new(); self.layers.len()],
            capacity: 0,
        }
    }

    /// Grows `scratch` to hold at least `lanes` gathered lanes.
    pub fn reserve_lanes(&self, scratch: &mut BatchScratch, lanes: usize) {
        if scratch.capacity >= lanes && scratch.h.len() == self.layers.len() {
            return;
        }
        let cap = lanes.max(scratch.capacity);
        scratch.h.resize(self.layers.len(), Vec::new());
        scratch.c.resize(self.layers.len(), Vec::new());
        scratch.z.resize(self.layers.len(), Vec::new());
        for (l, layer) in self.layers.iter().enumerate() {
            scratch.h[l].resize(cap * layer.hidden_dim(), 0.0);
            scratch.c[l].resize(cap * layer.hidden_dim(), 0.0);
            scratch.z[l].resize(cap * 4 * layer.hidden_dim(), 0.0);
        }
        scratch.capacity = cap;
    }

    /// Copies one stream's recurrent state into scratch row `i`
    /// (growing the scratch if needed).
    pub fn gather_lane(&self, scratch: &mut BatchScratch, i: usize, state: &StreamState) {
        self.reserve_lanes(scratch, i + 1);
        for (l, layer) in self.layers.iter().enumerate() {
            let hd = layer.hidden_dim();
            scratch.h[l][i * hd..(i + 1) * hd].copy_from_slice(&state.layers[l].h);
            scratch.c[l][i * hd..(i + 1) * hd].copy_from_slice(&state.layers[l].c);
        }
    }

    /// Copies scratch row `i` back into a stream's recurrent state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the scratch capacity.
    pub fn scatter_lane(&self, scratch: &BatchScratch, i: usize, state: &mut StreamState) {
        for (l, layer) in self.layers.iter().enumerate() {
            let hd = layer.hidden_dim();
            state.layers[l]
                .h
                .copy_from_slice(&scratch.h[l][i * hd..(i + 1) * hd]);
            state.layers[l]
                .c
                .copy_from_slice(&scratch.c[l][i * hd..(i + 1) * hd]);
        }
    }

    /// Advances the `batch` lanes already gathered into `scratch` (rows
    /// `0..batch`) by one timestep; see [`LstmClassifier::forward_batch`]
    /// for the block layouts.
    ///
    /// # Panics
    ///
    /// Panics if block sizes disagree with `batch` or the scratch is too
    /// small.
    pub fn forward_batch_gathered(
        &self,
        scratch: &mut BatchScratch,
        batch: usize,
        xs: &[f32],
        probs: &mut [f32],
    ) {
        self.forward_batch_gathered_logits(scratch, batch, xs, probs);
        let nc = self.config.num_classes;
        for i in 0..batch {
            softmax_in_place(&mut probs[i * nc..(i + 1) * nc]);
        }
    }

    /// Batched twin of [`LstmClassifier::step_logits`]: advances the
    /// gathered lanes and writes raw logits rows (no softmax).
    ///
    /// # Panics
    ///
    /// Panics if block sizes disagree with `batch` or the scratch is too
    /// small.
    pub fn forward_batch_gathered_logits(
        &self,
        scratch: &mut BatchScratch,
        batch: usize,
        xs: &[f32],
        probs: &mut [f32],
    ) {
        assert_eq!(
            xs.len(),
            batch * self.config.input_dim,
            "batch input mismatch"
        );
        assert_eq!(
            probs.len(),
            batch * self.config.num_classes,
            "batch probs mismatch"
        );
        if batch == 0 {
            return;
        }
        assert!(scratch.capacity >= batch, "scratch smaller than batch");

        // Step the stack: layer l reads the updated hidden block of layer
        // l-1 (its freshly computed outputs), exactly like the streaming
        // path.
        for l in 0..self.layers.len() {
            let hd = self.layers[l].hidden_dim();
            let (below, at) = scratch.h.split_at_mut(l);
            let x_block: &[f32] = if l == 0 {
                xs
            } else {
                &below[l - 1][..batch * self.layers[l - 1].hidden_dim()]
            };
            self.layers[l].forward_batch(
                batch,
                x_block,
                &mut at[0][..batch * hd],
                &mut scratch.c[l][..batch * hd],
                &mut scratch.z[l][..batch * 4 * hd],
                // Only the stack input is one-hot; higher layers consume
                // dense activations.
                l == 0,
            );
        }

        // Dense head.
        let top = self.layers.len() - 1;
        let top_hd = self.layers[top].hidden_dim();
        self.dense
            .forward_batch(batch, &scratch.h[top][..batch * top_hd], probs);
    }

    /// Advances `lanes.len()` independent streams by one timestep as
    /// matrix–matrix products.
    ///
    /// `xs` is the row-major `lanes.len() x input_dim` input block (row `i`
    /// is the input for `states[lanes[i]]`); `probs` is the row-major
    /// `lanes.len() x num_classes` output block receiving each lane's class
    /// distribution. Lane indices must be distinct. States are gathered
    /// into `scratch`, stepped through every layer and the dense head as
    /// batched products ([`crate::tensor::gemm_acc`]), and scattered back —
    /// each lane's state and distribution end up bit-identical to calling
    /// [`LstmClassifier::step`] on it alone.
    ///
    /// # Panics
    ///
    /// Panics if block sizes disagree with `lanes.len()`, or a lane index
    /// is out of bounds.
    pub fn forward_batch(
        &self,
        scratch: &mut BatchScratch,
        states: &mut [StreamState],
        lanes: &[usize],
        xs: &[f32],
        probs: &mut [f32],
    ) {
        let batch = lanes.len();
        if batch == 0 {
            assert!(xs.is_empty() && probs.is_empty(), "batch block mismatch");
            return;
        }
        self.reserve_lanes(scratch, batch);
        for (i, &lane) in lanes.iter().enumerate() {
            self.gather_lane(scratch, i, &states[lane]);
        }
        self.forward_batch_gathered(scratch, batch, xs, probs);
        for (i, &lane) in lanes.iter().enumerate() {
            self.scatter_lane(scratch, i, &mut states[lane]);
        }
    }

    /// Stateless prediction over a whole sequence: returns the probability
    /// distribution emitted *after* each input (i.e. the model's prediction
    /// for the next package's signature).
    pub fn predict_sequence(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut state = self.new_state();
        let mut out = Vec::with_capacity(inputs.len());
        let mut probs = vec![0.0f32; self.config.num_classes];
        for x in inputs {
            self.step(&mut state, x, &mut probs);
            out.push(probs.clone());
        }
        out
    }

    /// Runs truncated BPTT on one (sub)sequence: `inputs[t]` predicts
    /// `targets[t]`. Accumulates parameter gradients scaled by `scale` into
    /// `grads` and returns the summed cross-entropy loss and the number of
    /// top-1-correct predictions.
    ///
    /// Convenience wrapper over [`LstmClassifier::train_batch`] for a
    /// single lane; it builds a fresh [`BackwardPack`] and
    /// [`TrainScratch`] per call, so hot loops should batch chunks and
    /// pool those instead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` lengths differ or dimensions
    /// mismatch.
    pub fn train_sequence(
        &self,
        inputs: &[Vec<f32>],
        targets: &[usize],
        grads: &mut Gradients,
        scale: f32,
    ) -> (f32, usize) {
        assert_eq!(inputs.len(), targets.len(), "inputs/targets mismatch");
        if inputs.is_empty() {
            return (0.0, 0);
        }
        let pack = BackwardPack::new(self);
        let mut scratch = TrainScratch::default();
        self.train_lanes(
            &pack,
            &[LaneData::Split(inputs, targets)],
            &mut scratch,
            grads,
            scale,
        )
    }

    /// Runs truncated BPTT over a minibatch of chunks (lanes) at once:
    /// within each lane `chunk[t].0` predicts class `chunk[t].1`.
    /// Accumulates parameter gradients scaled by `scale` into `grads` and
    /// returns the summed cross-entropy loss and the number of
    /// top-1-correct predictions.
    ///
    /// Lanes may be ragged; they are scheduled longest-first (a stable,
    /// data-only order) and processed time-major, so per-lane activations
    /// are bitwise those of training the lane alone while every weight
    /// matrix streams once per *chunk set* instead of once per timestep.
    /// `pack` must hold the transposed views of the **current** weights
    /// ([`BackwardPack::refresh`] after every optimizer step); `scratch`
    /// is reusable across calls and grows to the largest minibatch seen.
    ///
    /// # Panics
    ///
    /// Panics if an input row's length differs from `input_dim` or a
    /// target is out of range.
    pub fn train_batch(
        &self,
        pack: &BackwardPack,
        chunks: &[&[(Vec<f32>, usize)]],
        scratch: &mut TrainScratch,
        grads: &mut Gradients,
        scale: f32,
    ) -> (f32, usize) {
        let lanes: Vec<LaneData> = chunks.iter().map(|&c| LaneData::Packed(c)).collect();
        self.train_lanes(pack, &lanes, scratch, grads, scale)
    }

    fn train_lanes(
        &self,
        pack: &BackwardPack,
        lanes: &[LaneData],
        scratch: &mut TrainScratch,
        grads: &mut Gradients,
        scale: f32,
    ) -> (f32, usize) {
        // Schedule lanes longest-first. The sort is stable and keys only on
        // the data, so the schedule — and with it every accumulation
        // order below — is a pure function of the chunk set.
        let order = &mut scratch.order;
        order.clear();
        order.extend(0..lanes.len());
        order.sort_by(|&a, &b| lanes[b].len().cmp(&lanes[a].len()));
        let lens: Vec<usize> = order.iter().map(|&i| lanes[i].len()).collect();
        let sched = LaneSchedule::from_sorted_lens(&lens);
        let total = sched.total;
        if total == 0 {
            return (0.0, 0);
        }
        let num_layers = self.layers.len();
        let in_dim = self.config.input_dim;
        let nc = self.config.num_classes;

        // Gather inputs into the concatenated time-major block.
        grow(&mut scratch.x_cat, total * in_dim);
        let x_cat = &mut scratch.x_cat[..total * in_dim];
        for t in 0..sched.steps() {
            for i in 0..sched.counts[t] {
                let x = lanes[order[i]].input(t);
                assert_eq!(x.len(), in_dim, "input dim mismatch");
                let r = sched.offsets[t] + i;
                x_cat[r * in_dim..(r + 1) * in_dim].copy_from_slice(x);
            }
        }

        // Forward through the stack, taping every layer.
        scratch.tapes.resize_with(num_layers, LayerTape::default);
        for l in 0..num_layers {
            let (below, at) = scratch.tapes.split_at_mut(l);
            let x_block: &[f32] = if l == 0 {
                x_cat
            } else {
                &below[l - 1].out[..total * self.layers[l - 1].hidden_dim()]
            };
            // Only the stack input is one-hot; higher layers consume dense
            // activations.
            self.layers[l].forward_batch_train(&sched, x_block, &mut at[0], l == 0);
        }

        // Dense head: logits for every (timestep, lane) row at once, then
        // loss, accuracy and the logits gradient row by row in schedule
        // order.
        let top = num_layers - 1;
        let top_hd = self.layers[top].hidden_dim();
        let top_out = &scratch.tapes[top].out[..total * top_hd];
        grow(&mut scratch.logits, total * nc);
        grow(&mut scratch.dlogits, total * nc);
        let logits = &mut scratch.logits[..total * nc];
        let dlogits = &mut scratch.dlogits[..total * nc];
        self.dense.forward_batch(total, top_out, logits);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for t in 0..sched.steps() {
            for i in 0..sched.counts[t] {
                let r = sched.offsets[t] + i;
                let target = lanes[order[i]].target(t);
                let row = &mut logits[r * nc..(r + 1) * nc];
                loss += softmax_cross_entropy(row, target);
                // `row` now holds probabilities.
                if in_top_k(row, target, 1) {
                    correct += 1;
                }
                softmax_cross_entropy_grad(row, target, scale, &mut dlogits[r * nc..(r + 1) * nc]);
            }
        }

        // Backward: dense head, then BPTT down the stack. The two hidden-
        // gradient buffers ping-pong between consuming a layer's d_out and
        // producing its d_inputs.
        let max_dim = self
            .layers
            .iter()
            .map(|l| l.input_dim().max(l.hidden_dim()))
            .max()
            .unwrap_or(0);
        grow(&mut scratch.d_a, total * max_dim);
        grow(&mut scratch.d_b, total * max_dim);
        let (mut d_out_buf, mut d_in_buf) = (&mut scratch.d_a, &mut scratch.d_b);
        self.dense.backward_batch(
            total,
            top_out,
            dlogits,
            &pack.dense_wt,
            &mut grads.dense,
            &mut d_out_buf[..total * top_hd],
        );
        for l in (0..num_layers).rev() {
            let x_block: &[f32] = if l == 0 {
                x_cat
            } else {
                &scratch.tapes[l - 1].out[..total * self.layers[l - 1].hidden_dim()]
            };
            self.layers[l].backward_batch(
                &sched,
                x_block,
                &scratch.tapes[l],
                &d_out_buf[..total * self.layers[l].hidden_dim()],
                &pack.layers[l].wt,
                &pack.layers[l].ut,
                &mut grads.layers[l],
                &mut d_in_buf[..total * self.layers[l].input_dim()],
                &mut scratch.bptt,
            );
            std::mem::swap(&mut d_out_buf, &mut d_in_buf);
        }

        (loss, correct)
    }

    /// Pairs every parameter slice with its gradient slice, in a stable
    /// order (for the optimizer).
    pub(crate) fn params_with_grads<'a>(
        &'a mut self,
        grads: &'a Gradients,
    ) -> Vec<(&'a mut [f32], &'a [f32])> {
        let mut out: Vec<(&'a mut [f32], &'a [f32])> = Vec::new();
        for (layer, grad) in self.layers.iter_mut().zip(grads.layers.iter()) {
            out.push((layer.w.as_mut_slice(), grad.w.as_slice()));
            out.push((layer.u.as_mut_slice(), grad.u.as_slice()));
            out.push((&mut layer.b, &grad.b));
        }
        out.push((self.dense.w.as_mut_slice(), grads.dense.w.as_slice()));
        out.push((&mut self.dense.b, &grads.dense.b));
        out
    }

    /// Serializes architecture + parameters to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"LSTM");
        let push_usize = |out: &mut Vec<u8>, v: usize| {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        };
        push_usize(&mut out, self.config.input_dim);
        push_usize(&mut out, self.config.hidden_dims.len());
        for &h in &self.config.hidden_dims {
            push_usize(&mut out, h);
        }
        push_usize(&mut out, self.config.num_classes);
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        let push_slice = |out: &mut Vec<u8>, s: &[f32]| {
            for &v in s {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        for layer in &self.layers {
            push_slice(&mut out, layer.w.as_slice());
            push_slice(&mut out, layer.u.as_slice());
            push_slice(&mut out, &layer.b);
        }
        push_slice(&mut out, self.dense.w.as_slice());
        push_slice(&mut out, &self.dense.b);
        out
    }

    /// Deserializes a model produced by [`LstmClassifier::to_bytes`].
    ///
    /// Returns `None` if the buffer is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, 4)? != b"LSTM" {
            return None;
        }
        let read_u64 = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let input_dim = read_u64(&mut pos)? as usize;
        let n_layers = read_u64(&mut pos)? as usize;
        if n_layers == 0 || n_layers > 64 {
            return None;
        }
        let mut hidden_dims = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            hidden_dims.push(read_u64(&mut pos)? as usize);
        }
        let num_classes = read_u64(&mut pos)? as usize;
        let seed = read_u64(&mut pos)?;
        let config = ModelConfig {
            input_dim,
            hidden_dims,
            num_classes,
            seed,
        };
        if config.input_dim == 0 || config.num_classes == 0 || config.hidden_dims.contains(&0) {
            return None;
        }
        let mut model = LstmClassifier::new(&config);
        let read_into = |pos: &mut usize, dst: &mut [f32]| -> Option<()> {
            for v in dst.iter_mut() {
                let raw = take(pos, 4)?;
                *v = f32::from_le_bytes(raw.try_into().ok()?);
            }
            Some(())
        };
        for layer in &mut model.layers {
            read_into(&mut pos, layer.w.as_mut_slice())?;
            read_into(&mut pos, layer.u.as_mut_slice())?;
            read_into(&mut pos, &mut layer.b)?;
        }
        read_into(&mut pos, model.dense.w.as_mut_slice())?;
        read_into(&mut pos, &mut model.dense.b)?;
        if pos != bytes.len() {
            return None;
        }
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ModelConfig {
        ModelConfig {
            input_dim: 6,
            hidden_dims: vec![8, 8],
            num_classes: 4,
            seed: 3,
        }
    }

    #[test]
    fn step_outputs_probability_distribution() {
        let model = LstmClassifier::new(&small_config());
        let mut state = model.new_state();
        let mut probs = vec![0.0; 4];
        let x = vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        model.step(&mut state, &x, &mut probs);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn streaming_state_matters() {
        let model = LstmClassifier::new(&small_config());
        let x = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut s1 = model.new_state();
        let mut p1 = vec![0.0; 4];
        model.step(&mut s1, &x, &mut p1);
        let first = p1.clone();
        model.step(&mut s1, &x, &mut p1);
        assert_ne!(first, p1, "recurrent state should change the prediction");
    }

    #[test]
    fn predict_sequence_matches_streaming() {
        let model = LstmClassifier::new(&small_config());
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|t| {
                let mut v = vec![0.0; 6];
                v[t % 6] = 1.0;
                v
            })
            .collect();
        let seq = model.predict_sequence(&inputs);
        let mut state = model.new_state();
        let mut probs = vec![0.0; 4];
        for (t, x) in inputs.iter().enumerate() {
            model.step(&mut state, x, &mut probs);
            assert_eq!(seq[t], probs, "step {t}");
        }
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        // Deterministic next-symbol task: 0 -> 1 -> 2 -> 3 -> 0 ...
        let config = ModelConfig {
            input_dim: 4,
            hidden_dims: vec![12],
            num_classes: 4,
            seed: 5,
        };
        let mut model = LstmClassifier::new(&config);
        let onehot = |c: usize| {
            let mut v = vec![0.0f32; 4];
            v[c] = 1.0;
            v
        };
        let inputs: Vec<Vec<f32>> = (0..40).map(|t| onehot(t % 4)).collect();
        let targets: Vec<usize> = (0..40).map(|t| (t + 1) % 4).collect();

        let mut grads = model.zero_gradients();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..150 {
            grads.zero();
            let (loss, _) = model.train_sequence(&inputs, &targets, &mut grads, 1.0 / 40.0);
            // Plain SGD for this test.
            for (p, g) in model.params_with_grads(&grads) {
                for (pv, gv) in p.iter_mut().zip(g.iter()) {
                    *pv -= 0.5 * gv;
                }
            }
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        let first = first_loss.unwrap();
        assert!(
            last_loss < first * 0.2,
            "loss should drop sharply: {first} -> {last_loss}"
        );
    }

    #[test]
    fn gradient_check_through_full_model() {
        let config = ModelConfig {
            input_dim: 3,
            hidden_dims: vec![4, 4],
            num_classes: 3,
            seed: 7,
        };
        let mut model = LstmClassifier::new(&config);
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|t| (0..3).map(|i| ((t + i) as f32 * 0.9).cos()).collect())
            .collect();
        let targets = vec![0usize, 2, 1, 0];

        let mut grads = model.zero_gradients();
        model.train_sequence(&inputs, &targets, &mut grads, 1.0);

        let loss_of = |model: &LstmClassifier| -> f32 {
            let probs = model.predict_sequence(&inputs);
            probs
                .iter()
                .zip(targets.iter())
                .map(|(p, &t)| -(p[t].max(1e-12)).ln())
                .sum()
        };

        let eps = 1e-2f32;
        // Check a sample of parameters across every block.
        let analytic: Vec<f32> = {
            let g = &grads;
            vec![
                g.layers[0].w.as_slice()[5],
                g.layers[0].u.as_slice()[3],
                g.layers[0].b[2],
                g.layers[1].w.as_slice()[7],
                g.layers[1].u.as_slice()[11],
                g.layers[1].b[9],
                g.dense.w.as_slice()[4],
                g.dense.b[1],
            ]
        };
        let mut numeric = Vec::new();
        {
            let mut perturb = |f: &mut dyn FnMut(&mut LstmClassifier, f32)| {
                f(&mut model, eps);
                let lp = loss_of(&model);
                f(&mut model, -2.0 * eps);
                let lm = loss_of(&model);
                f(&mut model, eps);
                numeric.push((lp - lm) / (2.0 * eps));
            };
            perturb(&mut |m, d| m.layers[0].w.as_mut_slice()[5] += d);
            perturb(&mut |m, d| m.layers[0].u.as_mut_slice()[3] += d);
            perturb(&mut |m, d| m.layers[0].b[2] += d);
            perturb(&mut |m, d| m.layers[1].w.as_mut_slice()[7] += d);
            perturb(&mut |m, d| m.layers[1].u.as_mut_slice()[11] += d);
            perturb(&mut |m, d| m.layers[1].b[9] += d);
            perturb(&mut |m, d| m.dense.w.as_mut_slice()[4] += d);
            perturb(&mut |m, d| m.dense.b[1] += d);
        }
        for (i, (n, a)) in numeric.iter().zip(analytic.iter()).enumerate() {
            assert!(
                (n - a).abs() < 3e-2 * (1.0 + n.abs()),
                "param sample {i}: numeric {n} vs analytic {a}"
            );
        }
    }

    #[test]
    fn serialization_round_trip() {
        let model = LstmClassifier::new(&small_config());
        let bytes = model.to_bytes();
        let back = LstmClassifier::from_bytes(&bytes).unwrap();
        assert_eq!(back, model);
        // Same predictions.
        let x = vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        let mut p1 = vec![0.0; 4];
        let mut p2 = vec![0.0; 4];
        model.step(&mut model.new_state(), &x, &mut p1);
        back.step(&mut back.new_state(), &x, &mut p2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(LstmClassifier::from_bytes(b"").is_none());
        assert!(LstmClassifier::from_bytes(b"LSTMxxxx").is_none());
        let mut bytes = LstmClassifier::new(&small_config()).to_bytes();
        bytes.pop();
        assert!(LstmClassifier::from_bytes(&bytes).is_none());
        bytes.push(0);
        bytes.push(0);
        assert!(LstmClassifier::from_bytes(&bytes).is_none());
    }

    #[test]
    fn memory_accounting() {
        let model = LstmClassifier::new(&small_config());
        assert_eq!(model.memory_bytes(), model.param_count() * 4);
        assert!(model.param_count() > 0);
    }

    #[test]
    fn gradient_norm_and_scaling() {
        let model = LstmClassifier::new(&small_config());
        let mut grads = model.zero_gradients();
        assert_eq!(grads.global_norm(), 0.0);
        let inputs = vec![vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]];
        model.train_sequence(&inputs, &[1], &mut grads, 1.0);
        let n = grads.global_norm();
        assert!(n > 0.0);
        grads.scale(0.5);
        assert!((grads.global_norm() - n * 0.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn step_rejects_wrong_input_dim() {
        let model = LstmClassifier::new(&small_config());
        let mut probs = vec![0.0; 4];
        model.step(&mut model.new_state(), &[1.0], &mut probs);
    }

    #[test]
    fn forward_batch_matches_streaming_steps_bitwise() {
        let model = LstmClassifier::new(&small_config());
        let lanes = 5usize;
        let dim = model.config().input_dim;
        let nc = model.num_classes();

        let mut batch_states: Vec<StreamState> = (0..lanes).map(|_| model.new_state()).collect();
        let mut ref_states = batch_states.clone();
        let mut scratch = model.batch_scratch();
        let lane_idx: Vec<usize> = (0..lanes).collect();
        let mut probs = vec![0.0f32; lanes * nc];
        let mut single = vec![0.0f32; nc];

        for t in 0..11 {
            // Mix of one-hot and dense inputs across lanes.
            let xs: Vec<f32> = (0..lanes * dim)
                .map(|i| {
                    if (i + t) % dim == t % dim {
                        1.0
                    } else if (i + t) % 5 == 0 {
                        ((i * 7 + t * 3) % 13) as f32 / 13.0
                    } else {
                        0.0
                    }
                })
                .collect();
            model.forward_batch(&mut scratch, &mut batch_states, &lane_idx, &xs, &mut probs);
            for lane in 0..lanes {
                model.step(
                    &mut ref_states[lane],
                    &xs[lane * dim..(lane + 1) * dim],
                    &mut single,
                );
                assert_eq!(
                    &probs[lane * nc..(lane + 1) * nc],
                    single.as_slice(),
                    "probs lane {lane} t {t}"
                );
            }
        }
        // Recurrent state blocks agree exactly too.
        for (a, b) in batch_states.iter().zip(ref_states.iter()) {
            assert_eq!(a.layers, b.layers);
        }
    }

    #[test]
    fn forward_batch_supports_sparse_lane_subsets() {
        let model = LstmClassifier::new(&small_config());
        let dim = model.config().input_dim;
        let nc = model.num_classes();
        let mut states: Vec<StreamState> = (0..4).map(|_| model.new_state()).collect();
        let mut scratch = model.batch_scratch();

        // Step lanes 3 and 1 only, in that order.
        let xs = vec![0.5f32; 2 * dim];
        let mut probs = vec![0.0f32; 2 * nc];
        model.forward_batch(&mut scratch, &mut states, &[3, 1], &xs, &mut probs);

        // Lanes 0 and 2 stay untouched; lanes 1 and 3 advanced identically
        // (identical inputs), matching a single-lane reference.
        assert_eq!(states[0], model.new_state());
        assert_eq!(states[2].layers, model.new_state().layers);
        let mut reference = model.new_state();
        let mut single = vec![0.0f32; nc];
        model.step(&mut reference, &vec![0.5f32; dim], &mut single);
        assert_eq!(states[1].layers, reference.layers);
        assert_eq!(states[3].layers, reference.layers);
        assert_eq!(&probs[..nc], single.as_slice());
        assert_eq!(&probs[nc..], single.as_slice());
    }

    #[test]
    fn forward_batch_empty_lane_set_is_noop() {
        let model = LstmClassifier::new(&small_config());
        let mut states: Vec<StreamState> = vec![model.new_state()];
        let mut scratch = model.batch_scratch();
        model.forward_batch(&mut scratch, &mut states, &[], &[], &mut []);
        assert_eq!(states[0], model.new_state());
    }
}
