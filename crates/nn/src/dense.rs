//! The dense projection from the top LSTM layer onto signature logits.

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::tensor::{axpy, gemm_dense_acc, matvec_acc, matvec_t_acc, outer_acc, Tensor2};

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    pub(crate) w: Tensor2,
    pub(crate) b: Vec<f32>,
}

/// Gradients mirroring a [`Dense`] layer.
#[derive(Debug, Clone)]
pub struct DenseGrad {
    pub(crate) w: Tensor2,
    pub(crate) b: Vec<f32>,
}

impl Dense {
    /// Creates a layer with uniform Xavier-style initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut ChaCha12Rng) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "dense dims must be positive"
        );
        let scale = (6.0 / (input_dim + output_dim) as f32).sqrt();
        let data = (0..input_dim * output_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            w: Tensor2::from_vec(input_dim, output_dim, data),
            b: vec![0.0; output_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Zero gradients shaped like this layer.
    pub(crate) fn zero_grad(&self) -> DenseGrad {
        DenseGrad {
            w: Tensor2::zeros(self.w.rows(), self.w.cols()),
            b: vec![0.0; self.b.len()],
        }
    }

    /// Computes `out = W x + b`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.b.len(), "dense output length mismatch");
        out.copy_from_slice(&self.b);
        matvec_acc(&self.w, x, out);
    }

    /// Batched projection: computes `out[b] = W x[b] + b` for every lane of
    /// a `batch x input_dim` block into a `batch x output_dim` block, as one
    /// register-blocked matrix–matrix product (the projection input is a
    /// dense hidden activation). Results compare equal to per-lane
    /// [`Dense::forward`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward_batch(&self, batch: usize, x: &[f32], out: &mut [f32]) {
        let n = self.b.len();
        assert_eq!(out.len(), batch * n, "dense batch output mismatch");
        for b in 0..batch {
            out[b * n..(b + 1) * n].copy_from_slice(&self.b);
        }
        gemm_dense_acc(batch, x, &self.w, out);
    }

    /// Accumulates parameter gradients and writes the input gradient for a
    /// whole batch of rows at once.
    ///
    /// `x` is the `batch x input_dim` activation block, `dy` the
    /// `batch x output_dim` logits-gradient block, `wt` the packed
    /// transposed view of `self.w` (see [`crate::model::BackwardPack`]),
    /// and `dx` receives `dY Wᵀ` (overwritten, not accumulated). Parameter
    /// gradients run as single batched kernels — `dW += Xᵀ dY` and the bias
    /// row-sum — streaming the weight matrix once per batch.
    pub(crate) fn backward_batch(
        &self,
        batch: usize,
        x: &[f32],
        dy: &[f32],
        wt: &Tensor2,
        grad: &mut DenseGrad,
        dx: &mut [f32],
    ) {
        outer_acc(batch, x, dy, &mut grad.w);
        // a = 1.0 keeps fused and plain accumulation bitwise identical.
        for row in dy.chunks_exact(self.b.len()) {
            axpy(1.0, row, &mut grad.b);
        }
        dx.fill(0.0);
        matvec_t_acc(batch, dy, wt, dx);
    }
}

impl DenseGrad {
    pub(crate) fn add_assign(&mut self, other: &DenseGrad) {
        self.w.add_assign(&other.w);
        for (a, b) in self.b.iter_mut().zip(other.b.iter()) {
            *a += b;
        }
    }

    pub(crate) fn zero(&mut self) {
        self.w.zero();
        self.b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(2)
    }

    #[test]
    fn forward_matches_manual() {
        let mut d = Dense::new(2, 3, &mut rng());
        d.w = Tensor2::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        d.b = vec![0.5, 0.5, 0.5];
        let mut out = vec![0.0; 3];
        d.forward(&[1.0, 2.0], &mut out);
        assert_eq!(out, vec![9.5, 12.5, 15.5]);
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(3, 2, &mut rng());
        let x = vec![0.3f32, -0.7, 1.1];
        // Loss = 0.5 |y|^2  =>  dy = y.
        let loss = |d: &Dense| {
            let mut y = vec![0.0; 2];
            d.forward(&x, &mut y);
            0.5 * y.iter().map(|v| v * v).sum::<f32>()
        };
        let mut y = vec![0.0; 2];
        d.forward(&x, &mut y);
        let mut grad = d.zero_grad();
        let mut dx = vec![0.0; 3];
        let mut wt = Tensor2::zeros(1, 1);
        crate::tensor::transpose_into(&d.w, &mut wt);
        d.backward_batch(1, &x, &y, &wt, &mut grad, &mut dx);

        let eps = 1e-2f32;
        for idx in 0..d.w.len() {
            let orig = d.w.as_slice()[idx];
            d.w.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&d);
            d.w.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&d);
            d.w.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.w.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "w[{idx}]: {numeric} vs {analytic}"
            );
        }
        // Input gradient by finite differences.
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let lossx = |xv: &[f32]| {
                let mut y = vec![0.0; 2];
                d.forward(xv, &mut y);
                0.5 * y.iter().map(|v| v * v).sum::<f32>()
            };
            let numeric = (lossx(&xp) - lossx(&xm)) / (2.0 * eps);
            assert!(
                (numeric - dx[i]).abs() < 1e-2 * (1.0 + numeric.abs()),
                "dx[{i}]: {numeric} vs {}",
                dx[i]
            );
        }
    }

    #[test]
    fn param_count() {
        let d = Dense::new(4, 7, &mut rng());
        assert_eq!(d.param_count(), 4 * 7 + 7);
    }

    #[test]
    fn forward_batch_matches_per_lane_forward_bitwise() {
        let d = Dense::new(37, 11, &mut rng());
        let lanes = 5usize;
        let xs: Vec<f32> = (0..lanes * 37)
            .map(|i| match i % 3 {
                0 => 0.0,
                1 => 1.0,
                _ => ((i * 31 % 97) as f32 - 48.0) / 11.0,
            })
            .collect();
        let mut batched = vec![0.0f32; lanes * 11];
        d.forward_batch(lanes, &xs, &mut batched);
        let mut single = vec![0.0f32; 11];
        for lane in 0..lanes {
            d.forward(&xs[lane * 37..(lane + 1) * 37], &mut single);
            assert_eq!(
                &batched[lane * 11..(lane + 1) * 11],
                single.as_slice(),
                "lane {lane}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panic() {
        Dense::new(0, 1, &mut rng());
    }
}
