//! Activation functions and their derivatives.
//!
//! The sigmoid and tanh forward evaluations delegate to
//! [`icsad_simd::math`], the portable exp-based implementation shared by
//! the vectorized gate kernels: the scalar functions here and the
//! slice-level [`sigmoid_in_place`]/[`tanh_in_place`] produce bitwise
//! identical results on every kernel backend (a per-record step and a
//! batched step therefore still agree exactly). Accuracy stays within a
//! few ulps of the `f64` reference — see the tests below, which pin the
//! same tolerances the old libm-based implementation met.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, computed stably for large
/// negative inputs (exactly `0.0`/`1.0` at the extremes).
pub fn sigmoid(x: f32) -> f32 {
    icsad_simd::math::sigmoid(x)
}

/// In-place [`sigmoid`] over a slice, vectorized on the dispatched kernel
/// backend (bitwise identical to the scalar function per element).
pub fn sigmoid_in_place(xs: &mut [f32]) {
    icsad_simd::sigmoid_in_place(xs);
}

/// Derivative of the sigmoid expressed through its output `s = σ(x)`.
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
///
/// The LSTM cell evaluates tanh twice per hidden unit per step, making
/// this one of the hottest functions in inference; the shared exp-based
/// implementation ([`icsad_simd::math::tanh`]) vectorizes it without
/// giving up the small-magnitude accuracy libm provided (tiny inputs
/// return `x` exactly, mid-range tracks the `f64` reference within a few
/// ulps).
pub fn tanh(x: f32) -> f32 {
    icsad_simd::math::tanh(x)
}

/// In-place [`tanh`] over a slice, vectorized on the dispatched kernel
/// backend (bitwise identical to the scalar function per element).
pub fn tanh_in_place(xs: &mut [f32]) {
    icsad_simd::tanh_in_place(xs);
}

/// Derivative of tanh expressed through its output `t = tanh(x)`.
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// In-place numerically stable softmax.
///
/// Subtracts the maximum logit before exponentiation; an all-`-inf` or empty
/// input is left untouched.
pub fn softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    if !max.is_finite() {
        return;
    }
    let mut sum = 0.0f32;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in logits.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let analytic = sigmoid_deriv_from_output(sigmoid(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn tanh_accurate_across_magnitudes() {
        // The hybrid must track libm tanhf within a few ulps from
        // denormal-small inputs through saturation, across the branch
        // point at 0.5.
        for exp2 in -30..=6 {
            for sign in [-1.0f32, 1.0] {
                for frac in [1.0f32, 1.37, 1.93] {
                    let x = sign * frac * 2f32.powi(exp2);
                    let got = tanh(x);
                    let want = (f64::from(x)).tanh();
                    let rel = ((f64::from(got) - want) / want).abs();
                    assert!(
                        rel < 8.0 * f64::from(f32::EPSILON),
                        "x={x}: got {got}, want {want}"
                    );
                }
            }
        }
        assert_eq!(tanh(0.0), 0.0);
        // Tiny inputs return x exactly (correctly rounded; libm's tanhf is
        // an ulp off here).
        assert_eq!(tanh(1e-7), 1e-7, "tiny inputs must not cancel");
        assert!(tanh(100.0) > 0.999_999);
        assert!(tanh(-100.0) < -0.999_999);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
            let analytic = tanh_deriv_from_output(tanh(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut v = vec![1000.0f32, 1001.0, 999.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let mut v = vec![5.0f32; 4];
        softmax_in_place(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_empty() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }
}
