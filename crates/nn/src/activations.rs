//! Scalar activation functions and their derivatives.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, computed stably for large
/// negative inputs.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed through its output `s = σ(x)`.
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent: libm below `|x| = 0.5`, the `exp` identity
/// `sign(x) * (1 - 2 / (e^{2|x|} + 1))` above.
///
/// `expf` is roughly 3x faster than `tanhf` in the system libm, and the
/// LSTM cell evaluates tanh twice per hidden unit per step, making this one
/// of the hottest scalar functions in inference. The exp identity cancels
/// catastrophically as `|x| → 0` (the result `≈ x` is formed by
/// subtracting from 1, capping *absolute* accuracy near `ulp(1)`), so the
/// small-magnitude range stays on `tanhf`; above 0.5 the subtraction is
/// benign and the identity tracks `tanhf` within ~3 ulps. Both the
/// per-record and the batched path share this single implementation, so
/// their equality is unaffected.
pub fn tanh(x: f32) -> f32 {
    let a = x.abs();
    if a < 0.5 {
        return x.tanh();
    }
    let t = 1.0 - 2.0 / ((2.0 * a).exp() + 1.0);
    if x.is_sign_negative() {
        -t
    } else {
        t
    }
}

/// Derivative of tanh expressed through its output `t = tanh(x)`.
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// In-place numerically stable softmax.
///
/// Subtracts the maximum logit before exponentiation; an all-`-inf` or empty
/// input is left untouched.
pub fn softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    if !max.is_finite() {
        return;
    }
    let mut sum = 0.0f32;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in logits.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let analytic = sigmoid_deriv_from_output(sigmoid(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn tanh_accurate_across_magnitudes() {
        // The hybrid must track libm tanhf within a few ulps from
        // denormal-small inputs through saturation, across the branch
        // point at 0.5.
        for exp2 in -30..=6 {
            for sign in [-1.0f32, 1.0] {
                for frac in [1.0f32, 1.37, 1.93] {
                    let x = sign * frac * 2f32.powi(exp2);
                    let got = tanh(x);
                    let want = (f64::from(x)).tanh();
                    let rel = ((f64::from(got) - want) / want).abs();
                    assert!(
                        rel < 8.0 * f64::from(f32::EPSILON),
                        "x={x}: got {got}, want {want}"
                    );
                }
            }
        }
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(1e-7), 1e-7f32.tanh(), "tiny inputs must not cancel");
        assert!(tanh(100.0) > 0.999_999);
        assert!(tanh(-100.0) < -0.999_999);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
            let analytic = tanh_deriv_from_output(tanh(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut v = vec![1000.0f32, 1001.0, 999.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let mut v = vec![5.0f32; 4];
        softmax_in_place(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_empty() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }
}
