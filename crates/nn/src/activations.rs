//! Scalar activation functions and their derivatives.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, computed stably for large
/// negative inputs.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed through its output `s = σ(x)`.
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed through its output `t = tanh(x)`.
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// In-place numerically stable softmax.
///
/// Subtracts the maximum logit before exponentiation; an all-`-inf` or empty
/// input is left untouched.
pub fn softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    if !max.is_finite() {
        return;
    }
    let mut sum = 0.0f32;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in logits.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert_eq!(sigmoid(1000.0), 1.0);
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let analytic = sigmoid_deriv_from_output(sigmoid(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            let numeric = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
            let analytic = tanh_deriv_from_output(tanh(x));
            assert!((numeric - analytic).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut v = vec![1000.0f32, 1001.0, 999.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let mut v = vec![5.0f32; 4];
        softmax_in_place(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_empty() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }
}
