//! A from-scratch stacked LSTM softmax classifier (paper §V).
//!
//! The time-series-level anomaly detector of the paper is a stacked LSTM
//! network ending in a softmax layer over all package signatures in the
//! signature database. It is trained with the multiclass cross-entropy
//! ("softmax") loss, which Lapin et al. show to be top-k calibrated — the
//! property the detector's top-k decision rule relies on.
//!
//! The Rust ML ecosystem is too immature to lean on (see DESIGN.md), so this
//! crate implements the whole stack:
//!
//! * [`tensor`] — a minimal `f32` matrix plus the vector/matrix kernels an
//!   LSTM needs,
//! * [`LstmLayer`] — one LSTM layer with full backpropagation through time,
//! * [`Dense`] — the projection onto signature logits,
//! * [`loss`] — numerically stable softmax cross-entropy and top-k error,
//! * [`LstmClassifier`] — the stacked network with streaming (stateful)
//!   prediction for online detection, plus (de)serialization,
//! * [`Adam`] — the Adam optimizer,
//! * [`Trainer`] — truncated-BPTT training over variable-length sequences
//!   with deterministic data-parallel gradient accumulation on the
//!   `icsad-runtime` work-stealing pool (bit-identical weights for any
//!   worker count).
//!
//! # Examples
//!
//! Learn a deterministic cycle `0 → 1 → 2 → 0 → …` and predict its next
//! symbol:
//!
//! ```
//! use icsad_nn::{LstmClassifier, ModelConfig, Trainer, TrainingConfig, Sequence};
//!
//! // One-hot encode the repeating sequence.
//! let onehot = |c: usize| {
//!     let mut v = vec![0.0f32; 3];
//!     v[c] = 1.0;
//!     v
//! };
//! let classes: Vec<usize> = (0..60).map(|i| i % 3).collect();
//! let steps: Vec<(Vec<f32>, usize)> = classes
//!     .windows(2)
//!     .map(|w| (onehot(w[0]), w[1]))
//!     .collect();
//! let mut model = LstmClassifier::new(&ModelConfig {
//!     input_dim: 3,
//!     hidden_dims: vec![16],
//!     num_classes: 3,
//!     seed: 7,
//! });
//! let mut trainer = Trainer::new(TrainingConfig {
//!     epochs: 60,
//!     learning_rate: 0.05,
//!     ..TrainingConfig::default()
//! });
//! trainer.fit(&mut model, &[Sequence::new(steps)]);
//!
//! // After "...0, 1" the next symbol must be 2.
//! let mut state = model.new_state();
//! let mut probs = vec![0.0; 3];
//! model.step(&mut state, &onehot(0), &mut probs);
//! model.step(&mut state, &onehot(1), &mut probs);
//! let best = probs
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
//!     .unwrap()
//!     .0;
//! assert_eq!(best, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
mod adam;
mod dense;
pub mod loss;
mod lstm;
mod model;
pub mod tensor;
mod trainer;

pub use adam::{Adam, AdamConfig};
pub use dense::Dense;
pub use lstm::{LstmLayer, LstmState};
pub use model::{
    BackwardPack, BatchScratch, Gradients, LstmClassifier, ModelConfig, StreamState, TrainScratch,
};
pub use trainer::{EpochStats, Sequence, Trainer, TrainerConfigError, TrainingConfig};
