//! Softmax cross-entropy loss and top-k utilities (paper §V-1/V-2).

use crate::activations::softmax_in_place;

/// Computes softmax probabilities in place from logits and returns the
/// cross-entropy loss `-ln p[target]`.
///
/// On return `logits` holds the probability vector. The probability is
/// floored at `1e-12` to keep the loss finite.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn softmax_cross_entropy(logits: &mut [f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target class out of range");
    softmax_in_place(logits);
    -(logits[target].max(1e-12)).ln()
}

/// Gradient of the softmax cross-entropy with respect to the logits:
/// `p - onehot(target)`, scaled by `scale` (use `1/n` for mean reduction).
///
/// `probs` must be the softmax output from [`softmax_cross_entropy`].
///
/// # Panics
///
/// Panics if `target` is out of range or lengths differ.
pub fn softmax_cross_entropy_grad(probs: &[f32], target: usize, scale: f32, dlogits: &mut [f32]) {
    assert!(target < probs.len(), "target class out of range");
    assert_eq!(probs.len(), dlogits.len(), "gradient length mismatch");
    for (d, &p) in dlogits.iter_mut().zip(probs.iter()) {
        *d = p * scale;
    }
    dlogits[target] -= scale;
}

/// Returns the indices of the `k` highest-probability classes in descending
/// order (ties broken by lower index).
pub fn top_k(probs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&i, &j| {
        probs[j]
            .partial_cmp(&probs[i])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    idx.truncate(k);
    idx
}

/// Returns `true` if `target` is among the `k` highest-probability classes.
pub fn in_top_k(probs: &[f32], target: usize, k: usize) -> bool {
    if k == 0 || target >= probs.len() {
        return false;
    }
    let pt = probs[target];
    // Count classes strictly better, and equal-probability classes with a
    // lower index (the tie-break used by `top_k`).
    let better = probs
        .iter()
        .enumerate()
        .filter(|&(i, &p)| p > pt || (p == pt && i < target))
        .count();
    better < k
}

/// The 1-based rank of `target` in the prediction: `1 +` the number of
/// classes with strictly higher probability (ties broken by lower index,
/// consistently with [`top_k`]).
///
/// Returns `probs.len() + 1` if `target` is out of range.
pub fn rank_of(probs: &[f32], target: usize) -> usize {
    if target >= probs.len() {
        return probs.len() + 1;
    }
    let pt = probs[target];
    1 + probs
        .iter()
        .enumerate()
        .filter(|&(i, &p)| p > pt || (p == pt && i < target))
        .count()
}

/// The top-k error over a set of prediction/target pairs: the fraction of
/// targets not contained in their prediction's top-k (paper §V-2, the
/// `err_k` used to choose `k`).
pub fn top_k_error(predictions: &[Vec<f32>], targets: &[usize], k: usize) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions/targets length mismatch"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let misses = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(p, &t)| !in_top_k(p, t, k))
        .count();
    misses as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_with_correct_confidence() {
        let mut low = vec![0.0f32, 0.0];
        let l_low = softmax_cross_entropy(&mut low, 0);
        let mut high = vec![5.0f32, 0.0];
        let l_high = softmax_cross_entropy(&mut high, 0);
        assert!(l_high < l_low);
    }

    #[test]
    fn loss_is_ln2_for_uniform_binary() {
        let mut logits = vec![1.0f32, 1.0];
        let loss = softmax_cross_entropy(&mut logits, 1);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn probs_replace_logits() {
        let mut logits = vec![2.0f32, 0.0, -1.0];
        softmax_cross_entropy(&mut logits, 0);
        let sum: f32 = logits.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let mut logits = vec![1.0f32, 2.0, 3.0];
        softmax_cross_entropy(&mut logits, 1);
        let mut grad = vec![0.0f32; 3];
        softmax_cross_entropy_grad(&logits, 1, 1.0, &mut grad);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(grad[1] < 0.0, "target gradient must be negative");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = vec![0.5f32, -0.3, 1.2, 0.0];
        let target = 2;
        let mut probs = logits.clone();
        softmax_cross_entropy(&mut probs, target);
        let mut grad = vec![0.0f32; 4];
        softmax_cross_entropy_grad(&probs, target, 1.0, &mut grad);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp[i] += eps;
            let mut lm = logits.clone();
            lm[i] -= eps;
            let fp = softmax_cross_entropy(&mut lp, target);
            let fm = softmax_cross_entropy(&mut lm, target);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "grad[{i}]: {numeric} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn top_k_ordering() {
        let probs = vec![0.1f32, 0.5, 0.15, 0.25];
        assert_eq!(top_k(&probs, 2), vec![1, 3]);
        assert_eq!(top_k(&probs, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn in_top_k_consistent_with_top_k() {
        let probs = vec![0.1f32, 0.5, 0.15, 0.25];
        for k in 0..=4 {
            let set = top_k(&probs, k);
            for t in 0..4 {
                assert_eq!(in_top_k(&probs, t, k), set.contains(&t), "k={k} t={t}");
            }
        }
    }

    #[test]
    fn in_top_k_edge_cases() {
        assert!(!in_top_k(&[0.5, 0.5], 0, 0));
        assert!(!in_top_k(&[0.5, 0.5], 7, 1));
        // Ties broken by index: class 0 wins the single slot.
        assert!(in_top_k(&[0.5, 0.5], 0, 1));
        assert!(!in_top_k(&[0.5, 0.5], 1, 1));
    }

    #[test]
    fn top_k_error_counts_misses() {
        let preds = vec![
            vec![0.9f32, 0.1, 0.0], // top-1 = 0
            vec![0.1f32, 0.2, 0.7], // top-1 = 2
        ];
        assert_eq!(top_k_error(&preds, &[0, 2], 1), 0.0);
        assert_eq!(top_k_error(&preds, &[1, 2], 1), 0.5);
        assert_eq!(top_k_error(&preds, &[1, 0], 1), 1.0);
        // k=2: top-2 sets are {0,1} and {2,1}.
        assert_eq!(top_k_error(&preds, &[1, 1], 2), 0.0);
        assert_eq!(top_k_error(&preds, &[1, 0], 2), 0.5);
        assert_eq!(top_k_error(&preds, &[1, 0], 3), 0.0);
    }

    #[test]
    fn rank_of_matches_in_top_k() {
        let probs = vec![0.1f32, 0.5, 0.15, 0.25];
        assert_eq!(rank_of(&probs, 1), 1);
        assert_eq!(rank_of(&probs, 3), 2);
        assert_eq!(rank_of(&probs, 2), 3);
        assert_eq!(rank_of(&probs, 0), 4);
        for t in 0..4 {
            for k in 1..=4 {
                assert_eq!(in_top_k(&probs, t, k), rank_of(&probs, t) <= k);
            }
        }
        assert_eq!(rank_of(&probs, 9), 5);
    }

    #[test]
    fn top_k_error_empty_is_zero() {
        assert_eq!(top_k_error(&[], &[], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let mut logits = vec![0.0f32; 2];
        softmax_cross_entropy(&mut logits, 5);
    }
}
