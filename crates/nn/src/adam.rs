//! The Adam optimizer.

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Step size.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub epsilon: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// Adam optimizer state over a fixed set of parameter slots.
///
/// Moment buffers are allocated lazily on the first [`Adam::step`] call; the
/// slot structure (count and lengths) must stay identical across calls.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// The hyperparameters.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Changes the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Number of optimizer steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every `(param, grad)` slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot structure changes between calls.
    pub fn step(&mut self, slots: &mut [(&mut [f32], &[f32])]) {
        if self.m.is_empty() {
            self.m = slots.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = slots.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), slots.len(), "slot count changed");
        self.t += 1;
        let c = &self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for (slot, (m, v)) in slots
            .iter_mut()
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let (params, grads) = slot;
            assert_eq!(params.len(), m.len(), "slot length changed");
            assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
            for i in 0..params.len() {
                let g = grads[i];
                m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
                v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                params[i] -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with Adam.
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.1,
            ..AdamConfig::default()
        });
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            let mut slots = [(x.as_mut_slice(), g.as_slice())];
            adam.step(&mut slots);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn handles_multiple_slots() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.2,
            ..AdamConfig::default()
        });
        let mut a = vec![5.0f32, -5.0];
        let mut b = vec![1.0f32];
        for _ in 0..400 {
            let ga: Vec<f32> = a.iter().map(|&x| 2.0 * x).collect();
            let gb: Vec<f32> = b.iter().map(|&x| 2.0 * x).collect();
            let mut slots = [
                (a.as_mut_slice(), ga.as_slice()),
                (b.as_mut_slice(), gb.as_slice()),
            ];
            adam.step(&mut slots);
        }
        assert!(a.iter().all(|x| x.abs() < 0.05));
        assert!(b.iter().all(|x| x.abs() < 0.05));
    }

    #[test]
    fn first_step_moves_by_about_learning_rate() {
        // With bias correction, the first Adam step is ~lr in the gradient
        // direction regardless of gradient magnitude.
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.01,
            ..AdamConfig::default()
        });
        let mut x = vec![1.0f32];
        let g = vec![1234.0f32];
        let mut slots = [(x.as_mut_slice(), g.as_slice())];
        adam.step(&mut slots);
        assert!((x[0] - (1.0 - 0.01)).abs() < 1e-4, "x = {}", x[0]);
    }

    #[test]
    fn zero_gradient_is_noop_at_start() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut x = vec![2.5f32];
        let g = vec![0.0f32];
        let mut slots = [(x.as_mut_slice(), g.as_slice())];
        adam.step(&mut slots);
        assert_eq!(x[0], 2.5);
    }

    #[test]
    #[should_panic(expected = "slot count changed")]
    fn slot_count_change_panics() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut x = vec![1.0f32];
        let g = vec![1.0f32];
        adam.step(&mut [(x.as_mut_slice(), g.as_slice())]);
        let mut y = vec![1.0f32];
        adam.step(&mut [
            (x.as_mut_slice(), g.as_slice()),
            (y.as_mut_slice(), g.as_slice()),
        ]);
    }

    #[test]
    fn learning_rate_can_be_changed() {
        let mut adam = Adam::new(AdamConfig::default());
        adam.set_learning_rate(0.5);
        assert_eq!(adam.config().learning_rate, 0.5);
    }
}
