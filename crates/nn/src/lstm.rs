//! One LSTM layer with full backpropagation through time.
//!
//! The implementation follows the memory-cell equations of the paper (§V):
//!
//! ```text
//! i_t = σ(W_i x_t + U_i h_{t-1} + b_i)
//! f_t = σ(W_f x_t + U_f h_{t-1} + b_f)
//! o_t = σ(W_o x_t + U_o h_{t-1} + b_o)
//! g_t = τ(W_g x_t + U_g h_{t-1} + b_g)
//! c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//! h_t = o_t ⊙ τ(c_t)
//! ```
//!
//! The four gate blocks are fused into single `W (in × 4H)`, `U (H × 4H)`
//! and `b (4H)` parameters in `[i, f, o, g]` order.

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::activations::{
    sigmoid_deriv_from_output, sigmoid_in_place, tanh_deriv_from_output, tanh_in_place,
};
use crate::tensor::{gemm_acc, gemm_dense_acc, matvec_acc, matvec_t_acc, outer_acc, Tensor2};

/// One LSTM layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmLayer {
    pub(crate) w: Tensor2,
    pub(crate) u: Tensor2,
    pub(crate) b: Vec<f32>,
    input_dim: usize,
    hidden_dim: usize,
}

/// Gradients mirroring an [`LstmLayer`].
#[derive(Debug, Clone)]
pub struct LstmGrad {
    pub(crate) w: Tensor2,
    pub(crate) u: Tensor2,
    pub(crate) b: Vec<f32>,
}

/// The recurrent state `(h, c)` of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden output vector.
    pub h: Vec<f32>,
    /// Cell state vector.
    pub c: Vec<f32>,
}

impl LstmState {
    /// Zero state for a layer of the given width.
    pub fn zeros(hidden_dim: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden_dim],
            c: vec![0.0; hidden_dim],
        }
    }
}

/// Per-timestep activations cached for backpropagation.
#[derive(Debug, Clone)]
pub(crate) struct StepCache {
    /// Gate activations `[i, f, o, g]`, each of width `H`.
    gates: Vec<f32>,
    /// `tanh(c_t)`.
    tc: Vec<f32>,
    /// Previous cell state.
    c_prev: Vec<f32>,
    /// Previous hidden state.
    h_prev: Vec<f32>,
}

impl LstmLayer {
    /// Creates a layer with uniform Xavier-style initialization and the
    /// customary forget-gate bias of 1.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut ChaCha12Rng) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0,
            "lstm dims must be positive"
        );
        let scale_w = (6.0 / (input_dim + hidden_dim) as f32).sqrt();
        let scale_u = (6.0 / (2 * hidden_dim) as f32).sqrt();
        let mut init = |rows: usize, cols: usize, scale: f32| {
            let data = (0..rows * cols)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect();
            Tensor2::from_vec(rows, cols, data)
        };
        let w = init(input_dim, 4 * hidden_dim, scale_w);
        let u = init(hidden_dim, 4 * hidden_dim, scale_u);
        let mut b = vec![0.0; 4 * hidden_dim];
        // Forget-gate bias block [H..2H) starts at 1 to ease long memories.
        for bf in &mut b[hidden_dim..2 * hidden_dim] {
            *bf = 1.0;
        }
        LstmLayer {
            w,
            u,
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden (memory cell) dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// Zero gradients shaped like this layer.
    pub(crate) fn zero_grad(&self) -> LstmGrad {
        LstmGrad {
            w: Tensor2::zeros(self.input_dim, 4 * self.hidden_dim),
            u: Tensor2::zeros(self.hidden_dim, 4 * self.hidden_dim),
            b: vec![0.0; 4 * self.hidden_dim],
        }
    }

    /// Advances the state by one timestep, writing `h_t` into `out_h` and
    /// (during training) pushing a [`StepCache`].
    pub(crate) fn step(
        &self,
        x: &[f32],
        state: &mut LstmState,
        out_h: &mut [f32],
        cache: Option<&mut Vec<StepCache>>,
    ) {
        let hd = self.hidden_dim;
        debug_assert_eq!(x.len(), self.input_dim);
        debug_assert_eq!(out_h.len(), hd);

        // z = W x + U h_prev + b
        let mut z = self.b.clone();
        matvec_acc(&self.w, x, &mut z);
        matvec_acc(&self.u, &state.h, &mut z);

        let c_prev = state.c.clone();
        let h_prev = state.h.clone();

        // Gate nonlinearities in place: [i, f, o] sigmoid, [g] tanh —
        // vectorized through the same dispatched kernels as the batched
        // path, so per-record ≡ batched stays bitwise.
        sigmoid_in_place(&mut z[..3 * hd]);
        tanh_in_place(&mut z[3 * hd..]);

        let (i_gate, rest) = z.split_at(hd);
        let (f_gate, rest) = rest.split_at(hd);
        let (o_gate, g_gate) = rest.split_at(hd);

        let mut tc = vec![0.0f32; hd];
        icsad_simd::lstm_cell_f32(
            i_gate,
            f_gate,
            o_gate,
            g_gate,
            &mut state.c,
            &mut state.h,
            Some(&mut tc),
        );
        out_h.copy_from_slice(&state.h);

        if let Some(cache) = cache {
            cache.push(StepCache {
                gates: z,
                tc,
                c_prev,
                h_prev,
            });
        }
    }

    /// Inference-only single step: advances `state` by one timestep and
    /// writes `h_t` into `out_h` (the public counterpart of the internal
    /// training step, without a backprop cache).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on dimension mismatch.
    pub fn forward(&self, x: &[f32], state: &mut LstmState, out_h: &mut [f32]) {
        self.step(x, state, out_h, None);
    }

    /// Batched inference step: advances `batch` independent lanes by one
    /// timestep as matrix–matrix products.
    ///
    /// `x` is the `batch x input_dim` input block; `h` and `c` are the
    /// `batch x hidden_dim` recurrent state blocks (updated in place, `h`
    /// holding the lane outputs afterwards); `z` is a `batch x 4*hidden_dim`
    /// scratch block. `sparse_input` selects the zero-skipping kernel for
    /// the `W x` product (right for one-hot inputs; lower layers of a
    /// stack should pass `false` so dense activations take the
    /// register-blocked kernel). Gate preactivations accumulate bias, then
    /// `W x`, then `U h` in the same order as [`LstmLayer::forward`], so
    /// every lane's result compares equal to stepping it alone.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward_batch(
        &self,
        batch: usize,
        x: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        z: &mut [f32],
        sparse_input: bool,
    ) {
        let hd = self.hidden_dim;
        assert_eq!(x.len(), batch * self.input_dim, "lstm batch input mismatch");
        assert_eq!(h.len(), batch * hd, "lstm batch hidden mismatch");
        assert_eq!(c.len(), batch * hd, "lstm batch cell mismatch");
        assert_eq!(z.len(), batch * 4 * hd, "lstm batch scratch mismatch");

        // z = b + W x + U h_prev, batched.
        for b in 0..batch {
            z[b * 4 * hd..(b + 1) * 4 * hd].copy_from_slice(&self.b);
        }
        if sparse_input {
            gemm_acc(batch, x, &self.w, z);
        } else {
            gemm_dense_acc(batch, x, &self.w, z);
        }
        gemm_dense_acc(batch, h, &self.u, z);

        for b in 0..batch {
            let zr = &mut z[b * 4 * hd..(b + 1) * 4 * hd];
            sigmoid_in_place(&mut zr[..3 * hd]);
            tanh_in_place(&mut zr[3 * hd..]);
            let (i_gate, rest) = zr.split_at(hd);
            let (f_gate, rest) = rest.split_at(hd);
            let (o_gate, g_gate) = rest.split_at(hd);
            let cr = &mut c[b * hd..(b + 1) * hd];
            let hr = &mut h[b * hd..(b + 1) * hd];
            icsad_simd::lstm_cell_f32(i_gate, f_gate, o_gate, g_gate, cr, hr, None);
        }
    }

    /// Backpropagates through a cached forward pass.
    ///
    /// `d_out[t]` is `∂L/∂h_t` from the layer above (already including any
    /// direct loss contribution); gradients are accumulated into `grad` and
    /// `∂L/∂x_t` is accumulated into `d_inputs[t]`.
    pub(crate) fn backward(
        &self,
        inputs: &[&[f32]],
        caches: &[StepCache],
        d_out: &[Vec<f32>],
        grad: &mut LstmGrad,
        d_inputs: &mut [Vec<f32>],
    ) {
        let hd = self.hidden_dim;
        let steps = caches.len();
        debug_assert_eq!(inputs.len(), steps);
        debug_assert_eq!(d_out.len(), steps);
        debug_assert_eq!(d_inputs.len(), steps);

        let mut dh_next = vec![0.0f32; hd];
        let mut dc_next = vec![0.0f32; hd];
        let mut dz = vec![0.0f32; 4 * hd];

        for t in (0..steps).rev() {
            let cache = &caches[t];
            let (i_gate, rest) = cache.gates.split_at(hd);
            let (f_gate, rest) = rest.split_at(hd);
            let (o_gate, g_gate) = rest.split_at(hd);

            for j in 0..hd {
                let dh = d_out[t][j] + dh_next[j];
                let d_o = dh * cache.tc[j];
                let dc = dh * o_gate[j] * tanh_deriv_from_output(cache.tc[j]) + dc_next[j];
                let d_i = dc * g_gate[j];
                let d_g = dc * i_gate[j];
                let d_f = dc * cache.c_prev[j];
                dz[j] = d_i * sigmoid_deriv_from_output(i_gate[j]);
                dz[hd + j] = d_f * sigmoid_deriv_from_output(f_gate[j]);
                dz[2 * hd + j] = d_o * sigmoid_deriv_from_output(o_gate[j]);
                dz[3 * hd + j] = d_g * tanh_deriv_from_output(g_gate[j]);
                dc_next[j] = dc * f_gate[j];
            }

            // Parameter gradients.
            outer_acc(&mut grad.w, inputs[t], &dz);
            outer_acc(&mut grad.u, &cache.h_prev, &dz);
            for (gb, &d) in grad.b.iter_mut().zip(dz.iter()) {
                *gb += d;
            }

            // Upstream gradients.
            dh_next.fill(0.0);
            matvec_t_acc(&self.u, &dz, &mut dh_next);
            matvec_t_acc(&self.w, &dz, &mut d_inputs[t]);
        }
    }
}

impl LstmGrad {
    /// Merges another gradient (from a parallel worker).
    pub(crate) fn add_assign(&mut self, other: &LstmGrad) {
        self.w.add_assign(&other.w);
        self.u.add_assign(&other.u);
        for (a, b) in self.b.iter_mut().zip(other.b.iter()) {
            *a += b;
        }
    }

    /// Sets all gradients to zero.
    pub(crate) fn zero(&mut self) {
        self.w.zero();
        self.u.zero();
        self.b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn state_shapes() {
        let layer = LstmLayer::new(3, 5, &mut rng());
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.hidden_dim(), 5);
        assert_eq!(layer.param_count(), 3 * 20 + 5 * 20 + 20);
        let s = LstmState::zeros(5);
        assert_eq!(s.h.len(), 5);
        assert_eq!(s.c.len(), 5);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let layer = LstmLayer::new(2, 3, &mut rng());
        assert!(layer.b[3..6].iter().all(|&b| b == 1.0));
        assert!(layer.b[..3].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn outputs_bounded_by_one() {
        let layer = LstmLayer::new(4, 8, &mut rng());
        let mut state = LstmState::zeros(8);
        let mut h = vec![0.0; 8];
        for t in 0..50 {
            let x: Vec<f32> = (0..4).map(|i| ((t + i) as f32).sin() * 3.0).collect();
            layer.step(&x, &mut state, &mut h, None);
            // h = o * tanh(c): strictly inside (-1, 1).
            assert!(h.iter().all(|&v| v.abs() < 1.0));
        }
    }

    #[test]
    fn state_carries_memory() {
        let layer = LstmLayer::new(2, 4, &mut rng());
        let mut fresh = LstmState::zeros(4);
        let mut primed = LstmState::zeros(4);
        let mut h = vec![0.0; 4];
        // Prime one state with a distinctive input history.
        for _ in 0..5 {
            layer.step(&[1.0, -1.0], &mut primed, &mut h, None);
        }
        let mut h_fresh = vec![0.0; 4];
        let mut h_primed = vec![0.0; 4];
        layer.step(&[0.5, 0.5], &mut fresh, &mut h_fresh, None);
        layer.step(&[0.5, 0.5], &mut primed, &mut h_primed, None);
        assert_ne!(h_fresh, h_primed, "history must influence the output");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LstmLayer::new(3, 4, &mut rng());
        let b = LstmLayer::new(3, 4, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn cache_grows_one_entry_per_step() {
        let layer = LstmLayer::new(2, 3, &mut rng());
        let mut state = LstmState::zeros(3);
        let mut h = vec![0.0; 3];
        let mut cache = Vec::new();
        for _ in 0..7 {
            layer.step(&[0.1, 0.2], &mut state, &mut h, Some(&mut cache));
        }
        assert_eq!(cache.len(), 7);
    }

    /// Full numerical gradient check of a single layer through a short
    /// sequence with a quadratic loss on the outputs.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = LstmLayer::new(3, 4, &mut rng());
        let seq: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..3).map(|i| ((t * 3 + i) as f32 * 0.7).sin()).collect())
            .collect();

        // Loss: 0.5 * sum_t |h_t|^2  =>  dL/dh_t = h_t.
        let forward_loss = |layer: &LstmLayer| -> f32 {
            let mut state = LstmState::zeros(4);
            let mut h = vec![0.0; 4];
            let mut loss = 0.0;
            for x in &seq {
                layer.step(x, &mut state, &mut h, None);
                loss += 0.5 * h.iter().map(|v| v * v).sum::<f32>();
            }
            loss
        };

        // Analytic gradients.
        let mut state = LstmState::zeros(4);
        let mut caches = Vec::new();
        let mut outputs: Vec<Vec<f32>> = Vec::new();
        let mut h = vec![0.0; 4];
        for x in &seq {
            layer.step(x, &mut state, &mut h, Some(&mut caches));
            outputs.push(h.clone());
        }
        let d_out: Vec<Vec<f32>> = outputs.clone();
        let mut grad = layer.zero_grad();
        let inputs: Vec<&[f32]> = seq.iter().map(|v| v.as_slice()).collect();
        let mut d_inputs: Vec<Vec<f32>> = vec![vec![0.0; 3]; 5];
        layer.backward(&inputs, &caches, &d_out, &mut grad, &mut d_inputs);

        // Numerical check on a sample of W, U, b entries.
        let eps = 1e-2f32;
        let mut checked = 0;
        for idx in [0usize, 7, 15, 23, 40] {
            if idx < layer.w.len() {
                let orig = layer.w.as_slice()[idx];
                layer.w.as_mut_slice()[idx] = orig + eps;
                let lp = forward_loss(&layer);
                layer.w.as_mut_slice()[idx] = orig - eps;
                let lm = forward_loss(&layer);
                layer.w.as_mut_slice()[idx] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.w.as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "w[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        for idx in [0usize, 9, 31] {
            let orig = layer.u.as_slice()[idx];
            layer.u.as_mut_slice()[idx] = orig + eps;
            let lp = forward_loss(&layer);
            layer.u.as_mut_slice()[idx] = orig - eps;
            let lm = forward_loss(&layer);
            layer.u.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.u.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "u[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        for idx in [0usize, 5, 13] {
            let orig = layer.b[idx];
            layer.b[idx] = orig + eps;
            let lp = forward_loss(&layer);
            layer.b[idx] = orig - eps;
            let lm = forward_loss(&layer);
            layer.b[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.b[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "b[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked >= 10);
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panic() {
        LstmLayer::new(0, 4, &mut rng());
    }

    #[test]
    fn forward_batch_matches_single_lane_steps_bitwise() {
        let layer = LstmLayer::new(5, 40, &mut rng()); // > gemm k block once stacked
        let lanes = 6usize;
        let hd = layer.hidden_dim();

        // Reference: step each lane separately for several timesteps.
        let mut ref_states: Vec<LstmState> = (0..lanes).map(|_| LstmState::zeros(hd)).collect();
        // Batched: the same lanes in one state block.
        let mut h = vec![0.0f32; lanes * hd];
        let mut c = vec![0.0f32; lanes * hd];
        let mut z = vec![0.0f32; lanes * 4 * hd];

        for t in 0..9 {
            let xs: Vec<f32> = (0..lanes * 5)
                .map(|i| match (i + t) % 4 {
                    0 => 0.0,
                    1 => 1.0,
                    _ => (((i * 13 + t * 7) % 19) as f32 - 9.0) / 5.0,
                })
                .collect();
            // Dense-input path: the test inputs mix zeros and reals.
            layer.forward_batch(lanes, &xs, &mut h, &mut c, &mut z, false);
            let mut out = vec![0.0f32; hd];
            for (lane, state) in ref_states.iter_mut().enumerate() {
                layer.forward(&xs[lane * 5..(lane + 1) * 5], state, &mut out);
                assert_eq!(
                    &h[lane * hd..(lane + 1) * hd],
                    out.as_slice(),
                    "h lane {lane} t {t}"
                );
                assert_eq!(
                    &c[lane * hd..(lane + 1) * hd],
                    state.c.as_slice(),
                    "c lane {lane} t {t}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "lstm batch input mismatch")]
    fn forward_batch_rejects_bad_block() {
        let layer = LstmLayer::new(3, 4, &mut rng());
        let mut h = vec![0.0; 8];
        let mut c = vec![0.0; 8];
        let mut z = vec![0.0; 32];
        layer.forward_batch(2, &[0.0; 5], &mut h, &mut c, &mut z, true);
    }
}
