//! One LSTM layer with full backpropagation through time.
//!
//! The implementation follows the memory-cell equations of the paper (§V):
//!
//! ```text
//! i_t = σ(W_i x_t + U_i h_{t-1} + b_i)
//! f_t = σ(W_f x_t + U_f h_{t-1} + b_f)
//! o_t = σ(W_o x_t + U_o h_{t-1} + b_o)
//! g_t = τ(W_g x_t + U_g h_{t-1} + b_g)
//! c_t = f_t ⊙ c_{t-1} + i_t ⊙ g_t
//! h_t = o_t ⊙ τ(c_t)
//! ```
//!
//! The four gate blocks are fused into single `W (in × 4H)`, `U (H × 4H)`
//! and `b (4H)` parameters in `[i, f, o, g]` order.

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::activations::{
    sigmoid_deriv_from_output, sigmoid_in_place, tanh_deriv_from_output, tanh_in_place,
};
use crate::tensor::{
    axpy, gemm_acc, gemm_dense_acc, grow, matvec_acc, matvec_t_acc, outer_acc, Tensor2,
};

/// One LSTM layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmLayer {
    pub(crate) w: Tensor2,
    pub(crate) u: Tensor2,
    pub(crate) b: Vec<f32>,
    input_dim: usize,
    hidden_dim: usize,
}

/// Gradients mirroring an [`LstmLayer`].
#[derive(Debug, Clone)]
pub struct LstmGrad {
    pub(crate) w: Tensor2,
    pub(crate) u: Tensor2,
    pub(crate) b: Vec<f32>,
}

/// The recurrent state `(h, c)` of one layer.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden output vector.
    pub h: Vec<f32>,
    /// Cell state vector.
    pub c: Vec<f32>,
    /// Reusable gate-preactivation scratch for [`LstmLayer::forward`]
    /// (sized on first use), so stepping a lane allocates nothing.
    z: Vec<f32>,
}

impl LstmState {
    /// Zero state for a layer of the given width.
    pub fn zeros(hidden_dim: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden_dim],
            c: vec![0.0; hidden_dim],
            z: Vec::new(),
        }
    }
}

impl PartialEq for LstmState {
    /// State identity is `(h, c)` only — the gate scratch is transient
    /// (dead outside one `forward` call) and must not distinguish states
    /// that stepped through different code paths.
    fn eq(&self, other: &Self) -> bool {
        self.h == other.h && self.c == other.c
    }
}

/// Time-major schedule of a ragged training minibatch.
///
/// Lanes (independent subsequences trained together) are sorted by length,
/// longest first, so the lanes still active at any timestep `t` form a
/// *prefix* of the lane order. The concatenated tape buffers then lay out
/// one block of `counts[t]` rows per timestep at `offsets[t]`, and row `i`
/// of consecutive blocks is always the same lane — recurrent state flows
/// between blocks with plain prefix slices, no per-lane gather.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneSchedule {
    /// Active-lane count per timestep (non-increasing).
    pub counts: Vec<usize>,
    /// Row offset of each timestep's block in the concatenated buffers.
    pub offsets: Vec<usize>,
    /// Total concatenated rows (`Σ counts`).
    pub total: usize,
}

impl LaneSchedule {
    /// Builds the schedule from per-lane lengths sorted descending.
    pub fn from_sorted_lens(lens: &[usize]) -> Self {
        debug_assert!(
            lens.windows(2).all(|w| w[0] >= w[1]),
            "lane lengths must be sorted descending"
        );
        let t_max = lens.first().copied().unwrap_or(0);
        let mut counts = Vec::with_capacity(t_max);
        let mut offsets = Vec::with_capacity(t_max);
        let mut total = 0usize;
        for t in 0..t_max {
            offsets.push(total);
            let n = lens.iter().take_while(|&&l| l > t).count();
            counts.push(n);
            total += n;
        }
        LaneSchedule {
            counts,
            offsets,
            total,
        }
    }

    /// Number of timesteps (the longest lane's length).
    pub fn steps(&self) -> usize {
        self.counts.len()
    }

    /// Lanes active at `t = 0` (every non-empty lane).
    pub fn max_lanes(&self) -> usize {
        self.counts.first().copied().unwrap_or(0)
    }
}

/// Concatenated forward activations of one layer over a scheduled
/// minibatch — the BPTT tape. Row `offsets[t] + i` holds lane `i`'s values
/// at timestep `t`. Buffers are pooled (grown, never shrunk) so one tape
/// serves every chunk a worker processes.
#[derive(Debug, Clone, Default)]
pub(crate) struct LayerTape {
    /// Post-activation gates `[i, f, o, g]`, `total x 4H`.
    pub z: Vec<f32>,
    /// `tanh(c_t)`, `total x H`.
    pub tc: Vec<f32>,
    /// Post-update cell state `c_t`, `total x H`.
    pub c: Vec<f32>,
    /// Hidden output `h_t`, `total x H`.
    pub out: Vec<f32>,
}

/// Pooled scratch for [`LstmLayer::backward_batch`], shared across the
/// layers of a stack (grown to the largest shape in use).
#[derive(Debug, Clone, Default)]
pub(crate) struct BpttScratch {
    /// Gate-preactivation gradients, `total x 4H`.
    dz: Vec<f32>,
    /// Hidden gradient flowing to the previous timestep, `max_lanes x H`.
    dh_next: Vec<f32>,
    /// Cell gradient flowing to the previous timestep, `max_lanes x H`.
    dc_next: Vec<f32>,
    /// Gathered previous-hidden rows for the `dU` product, `total x H`.
    h_prev: Vec<f32>,
}

impl LstmLayer {
    /// Creates a layer with uniform Xavier-style initialization and the
    /// customary forget-gate bias of 1.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut ChaCha12Rng) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0,
            "lstm dims must be positive"
        );
        let scale_w = (6.0 / (input_dim + hidden_dim) as f32).sqrt();
        let scale_u = (6.0 / (2 * hidden_dim) as f32).sqrt();
        let mut init = |rows: usize, cols: usize, scale: f32| {
            let data = (0..rows * cols)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect();
            Tensor2::from_vec(rows, cols, data)
        };
        let w = init(input_dim, 4 * hidden_dim, scale_w);
        let u = init(hidden_dim, 4 * hidden_dim, scale_u);
        let mut b = vec![0.0; 4 * hidden_dim];
        // Forget-gate bias block [H..2H) starts at 1 to ease long memories.
        for bf in &mut b[hidden_dim..2 * hidden_dim] {
            *bf = 1.0;
        }
        LstmLayer {
            w,
            u,
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden (memory cell) dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    /// Zero gradients shaped like this layer.
    pub(crate) fn zero_grad(&self) -> LstmGrad {
        LstmGrad {
            w: Tensor2::zeros(self.input_dim, 4 * self.hidden_dim),
            u: Tensor2::zeros(self.hidden_dim, 4 * self.hidden_dim),
            b: vec![0.0; 4 * self.hidden_dim],
        }
    }

    /// Advances the state by one timestep and writes `h_t` into `out_h`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on dimension mismatch.
    pub fn forward(&self, x: &[f32], state: &mut LstmState, out_h: &mut [f32]) {
        let hd = self.hidden_dim;
        debug_assert_eq!(x.len(), self.input_dim);
        debug_assert_eq!(out_h.len(), hd);

        // z = W x + U h_prev + b, built in the state's reusable scratch so
        // a steady-state step performs zero heap allocations.
        let LstmState { h, c, z } = state;
        z.resize(4 * hd, 0.0);
        z.copy_from_slice(&self.b);
        matvec_acc(&self.w, x, z);
        matvec_acc(&self.u, h, z);

        // Gate nonlinearities in place: [i, f, o] sigmoid, [g] tanh —
        // vectorized through the same dispatched kernels as the batched
        // path, so per-record ≡ batched stays bitwise.
        sigmoid_in_place(&mut z[..3 * hd]);
        tanh_in_place(&mut z[3 * hd..]);

        let (i_gate, rest) = z.split_at(hd);
        let (f_gate, rest) = rest.split_at(hd);
        let (o_gate, g_gate) = rest.split_at(hd);

        icsad_simd::lstm_cell_f32(i_gate, f_gate, o_gate, g_gate, c, h, None);
        out_h.copy_from_slice(h);
    }

    /// Batched inference step: advances `batch` independent lanes by one
    /// timestep as matrix–matrix products.
    ///
    /// `x` is the `batch x input_dim` input block; `h` and `c` are the
    /// `batch x hidden_dim` recurrent state blocks (updated in place, `h`
    /// holding the lane outputs afterwards); `z` is a `batch x 4*hidden_dim`
    /// scratch block. `sparse_input` selects the zero-skipping kernel for
    /// the `W x` product (right for one-hot inputs; lower layers of a
    /// stack should pass `false` so dense activations take the
    /// register-blocked kernel). Gate preactivations accumulate bias, then
    /// `W x`, then `U h` in the same order as [`LstmLayer::forward`], so
    /// every lane's result compares equal to stepping it alone.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward_batch(
        &self,
        batch: usize,
        x: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        z: &mut [f32],
        sparse_input: bool,
    ) {
        let hd = self.hidden_dim;
        assert_eq!(x.len(), batch * self.input_dim, "lstm batch input mismatch");
        assert_eq!(h.len(), batch * hd, "lstm batch hidden mismatch");
        assert_eq!(c.len(), batch * hd, "lstm batch cell mismatch");
        assert_eq!(z.len(), batch * 4 * hd, "lstm batch scratch mismatch");

        // z = b + W x + U h_prev, batched.
        for b in 0..batch {
            z[b * 4 * hd..(b + 1) * 4 * hd].copy_from_slice(&self.b);
        }
        if sparse_input {
            gemm_acc(batch, x, &self.w, z);
        } else {
            gemm_dense_acc(batch, x, &self.w, z);
        }
        gemm_dense_acc(batch, h, &self.u, z);

        for b in 0..batch {
            let zr = &mut z[b * 4 * hd..(b + 1) * 4 * hd];
            sigmoid_in_place(&mut zr[..3 * hd]);
            tanh_in_place(&mut zr[3 * hd..]);
            let (i_gate, rest) = zr.split_at(hd);
            let (f_gate, rest) = rest.split_at(hd);
            let (o_gate, g_gate) = rest.split_at(hd);
            let cr = &mut c[b * hd..(b + 1) * hd];
            let hr = &mut h[b * hd..(b + 1) * hd];
            icsad_simd::lstm_cell_f32(i_gate, f_gate, o_gate, g_gate, cr, hr, None);
        }
    }

    /// Training forward pass over a whole scheduled minibatch, recording
    /// the tape for [`LstmLayer::backward_batch`].
    ///
    /// `x_cat` is the concatenated `total x input_dim` input block in
    /// schedule order. The input projection `W x` runs as **one** matrix
    /// product over every (timestep, lane) row at once; only the recurrent
    /// half walks time. Per gate element every input-projection
    /// contribution precedes every recurrent contribution, each in
    /// ascending index order — exactly the order of stepping one timestep
    /// at a time, so each lane's activations are bitwise those of
    /// [`LstmLayer::forward`] on that lane alone.
    pub(crate) fn forward_batch_train(
        &self,
        sched: &LaneSchedule,
        x_cat: &[f32],
        tape: &mut LayerTape,
        sparse_input: bool,
    ) {
        let hd = self.hidden_dim;
        let total = sched.total;
        debug_assert_eq!(x_cat.len(), total * self.input_dim);
        grow(&mut tape.z, total * 4 * hd);
        grow(&mut tape.tc, total * hd);
        grow(&mut tape.c, total * hd);
        grow(&mut tape.out, total * hd);
        let z = &mut tape.z[..total * 4 * hd];

        // Bias rows, then the input projection for every timestep at once.
        for row in z.chunks_exact_mut(4 * hd) {
            row.copy_from_slice(&self.b);
        }
        if sparse_input {
            gemm_acc(total, x_cat, &self.w, z);
        } else {
            gemm_dense_acc(total, x_cat, &self.w, z);
        }

        // Recurrent half: U h_{t-1} (h_prev ≡ 0 at t = 0, so the product
        // is skipped there), gate nonlinearities, cell update.
        for t in 0..sched.steps() {
            let n = sched.counts[t];
            let r0 = sched.offsets[t];
            if t > 0 {
                let p0 = sched.offsets[t - 1];
                gemm_dense_acc(
                    n,
                    &tape.out[p0 * hd..(p0 + n) * hd],
                    &self.u,
                    &mut z[r0 * 4 * hd..(r0 + n) * 4 * hd],
                );
            }
            for i in 0..n {
                let r = r0 + i;
                let zr = &mut z[r * 4 * hd..(r + 1) * 4 * hd];
                sigmoid_in_place(&mut zr[..3 * hd]);
                tanh_in_place(&mut zr[3 * hd..]);
                if t == 0 {
                    tape.c[r * hd..(r + 1) * hd].fill(0.0);
                } else {
                    let p = (sched.offsets[t - 1] + i) * hd;
                    tape.c.copy_within(p..p + hd, r * hd);
                }
                let zr = &z[r * 4 * hd..(r + 1) * 4 * hd];
                let (i_gate, rest) = zr.split_at(hd);
                let (f_gate, rest) = rest.split_at(hd);
                let (o_gate, g_gate) = rest.split_at(hd);
                icsad_simd::lstm_cell_f32(
                    i_gate,
                    f_gate,
                    o_gate,
                    g_gate,
                    &mut tape.c[r * hd..(r + 1) * hd],
                    &mut tape.out[r * hd..(r + 1) * hd],
                    Some(&mut tape.tc[r * hd..(r + 1) * hd]),
                );
            }
        }
    }

    /// Backpropagates through a taped forward pass of a whole minibatch.
    ///
    /// `d_out` is `∂L/∂h` in tape layout (`total x H`, already including
    /// any direct loss contribution); `wt`/`ut` are the packed transposed
    /// views of `self.w`/`self.u` (see [`crate::model::BackwardPack`]).
    /// Parameter gradients accumulate into `grad`; `∂L/∂x` is written
    /// (overwritten, not accumulated) into `d_inputs` in tape layout.
    ///
    /// Only the per-element gate calculus and the recurrent `dz Uᵀ`
    /// product walk time; the parameter gradients `dW += Xᵀ dZ`,
    /// `dU += H_prevᵀ dZ` and the input gradient `dX = dZ Wᵀ` each run as
    /// one batched kernel over all `total` rows, streaming every weight
    /// matrix once per chunk instead of once per timestep. Contraction
    /// order per element is the concatenation order, fixed by the
    /// schedule — independent of SIMD backend and worker count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_batch(
        &self,
        sched: &LaneSchedule,
        x_cat: &[f32],
        tape: &LayerTape,
        d_out: &[f32],
        wt: &Tensor2,
        ut: &Tensor2,
        grad: &mut LstmGrad,
        d_inputs: &mut [f32],
        scratch: &mut BpttScratch,
    ) {
        let hd = self.hidden_dim;
        let total = sched.total;
        let lanes = sched.max_lanes();
        debug_assert_eq!(x_cat.len(), total * self.input_dim);
        debug_assert_eq!(d_out.len(), total * hd);
        debug_assert_eq!(d_inputs.len(), total * self.input_dim);
        grow(&mut scratch.dz, total * 4 * hd);
        grow(&mut scratch.dh_next, lanes * hd);
        grow(&mut scratch.dc_next, lanes * hd);
        grow(&mut scratch.h_prev, total * hd);
        let dz = &mut scratch.dz[..total * 4 * hd];
        let dh_next = &mut scratch.dh_next[..lanes * hd];
        let dc_next = &mut scratch.dc_next[..lanes * hd];
        dh_next.fill(0.0);
        dc_next.fill(0.0);

        for t in (0..sched.steps()).rev() {
            let n = sched.counts[t];
            let r0 = sched.offsets[t];
            for i in 0..n {
                let r = r0 + i;
                let gates = &tape.z[r * 4 * hd..(r + 1) * 4 * hd];
                let (i_gate, rest) = gates.split_at(hd);
                let (f_gate, rest) = rest.split_at(hd);
                let (o_gate, g_gate) = rest.split_at(hd);
                let tc = &tape.tc[r * hd..(r + 1) * hd];
                let d_out_r = &d_out[r * hd..(r + 1) * hd];
                let dzr = &mut dz[r * 4 * hd..(r + 1) * 4 * hd];
                let dh_r = &dh_next[i * hd..(i + 1) * hd];
                let dc_r = &mut dc_next[i * hd..(i + 1) * hd];
                let c_prev = (t > 0).then(|| {
                    let p = (sched.offsets[t - 1] + i) * hd;
                    &tape.c[p..p + hd]
                });
                for j in 0..hd {
                    let dh = d_out_r[j] + dh_r[j];
                    let d_o = dh * tc[j];
                    let dc = dh * o_gate[j] * tanh_deriv_from_output(tc[j]) + dc_r[j];
                    let d_i = dc * g_gate[j];
                    let d_g = dc * i_gate[j];
                    let d_f = dc * c_prev.map_or(0.0, |c| c[j]);
                    dzr[j] = d_i * sigmoid_deriv_from_output(i_gate[j]);
                    dzr[hd + j] = d_f * sigmoid_deriv_from_output(f_gate[j]);
                    dzr[2 * hd + j] = d_o * sigmoid_deriv_from_output(o_gate[j]);
                    dzr[3 * hd + j] = d_g * tanh_deriv_from_output(g_gate[j]);
                    dc_r[j] = dc * f_gate[j];
                }
            }
            // Hidden gradient for t-1: overwrite the prefix active at `t`.
            // Rows beyond it belong to lanes that end before `t`; every
            // later (higher-t) write was at most this wide, so they are
            // still zero from the initial fill — exactly the zero gradient
            // those lanes must contribute.
            dh_next[..n * hd].fill(0.0);
            matvec_t_acc(
                n,
                &dz[r0 * 4 * hd..(r0 + n) * 4 * hd],
                ut,
                &mut dh_next[..n * hd],
            );
        }

        // Parameter gradients, each as one kernel over the whole chunk.
        outer_acc(total, x_cat, dz, &mut grad.w);
        let h_prev = &mut scratch.h_prev[..total * hd];
        for t in 0..sched.steps() {
            let n = sched.counts[t];
            let r0 = sched.offsets[t];
            if t == 0 {
                h_prev[r0 * hd..(r0 + n) * hd].fill(0.0);
            } else {
                let p0 = sched.offsets[t - 1];
                h_prev[r0 * hd..(r0 + n) * hd].copy_from_slice(&tape.out[p0 * hd..(p0 + n) * hd]);
            }
        }
        outer_acc(total, h_prev, dz, &mut grad.u);
        // a = 1.0 makes fused and plain accumulation identical, so the bias
        // gradient is FMA-policy independent like the plain adds it replaces.
        for row in dz.chunks_exact(4 * hd) {
            axpy(1.0, row, &mut grad.b);
        }
        d_inputs.fill(0.0);
        matvec_t_acc(total, dz, wt, d_inputs);
    }
}

impl LstmGrad {
    /// Merges another gradient (from a parallel worker).
    pub(crate) fn add_assign(&mut self, other: &LstmGrad) {
        self.w.add_assign(&other.w);
        self.u.add_assign(&other.u);
        for (a, b) in self.b.iter_mut().zip(other.b.iter()) {
            *a += b;
        }
    }

    /// Sets all gradients to zero.
    pub(crate) fn zero(&mut self) {
        self.w.zero();
        self.u.zero();
        self.b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(1)
    }

    #[test]
    fn state_shapes() {
        let layer = LstmLayer::new(3, 5, &mut rng());
        assert_eq!(layer.input_dim(), 3);
        assert_eq!(layer.hidden_dim(), 5);
        assert_eq!(layer.param_count(), 3 * 20 + 5 * 20 + 20);
        let s = LstmState::zeros(5);
        assert_eq!(s.h.len(), 5);
        assert_eq!(s.c.len(), 5);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let layer = LstmLayer::new(2, 3, &mut rng());
        assert!(layer.b[3..6].iter().all(|&b| b == 1.0));
        assert!(layer.b[..3].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn outputs_bounded_by_one() {
        let layer = LstmLayer::new(4, 8, &mut rng());
        let mut state = LstmState::zeros(8);
        let mut h = vec![0.0; 8];
        for t in 0..50 {
            let x: Vec<f32> = (0..4).map(|i| ((t + i) as f32).sin() * 3.0).collect();
            layer.forward(&x, &mut state, &mut h);
            // h = o * tanh(c): strictly inside (-1, 1).
            assert!(h.iter().all(|&v| v.abs() < 1.0));
        }
    }

    #[test]
    fn state_carries_memory() {
        let layer = LstmLayer::new(2, 4, &mut rng());
        let mut fresh = LstmState::zeros(4);
        let mut primed = LstmState::zeros(4);
        let mut h = vec![0.0; 4];
        // Prime one state with a distinctive input history.
        for _ in 0..5 {
            layer.forward(&[1.0, -1.0], &mut primed, &mut h);
        }
        let mut h_fresh = vec![0.0; 4];
        let mut h_primed = vec![0.0; 4];
        layer.forward(&[0.5, 0.5], &mut fresh, &mut h_fresh);
        layer.forward(&[0.5, 0.5], &mut primed, &mut h_primed);
        assert_ne!(h_fresh, h_primed, "history must influence the output");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LstmLayer::new(3, 4, &mut rng());
        let b = LstmLayer::new(3, 4, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_counts_ragged_lanes() {
        let sched = LaneSchedule::from_sorted_lens(&[4, 2, 2, 1]);
        assert_eq!(sched.counts, vec![4, 3, 1, 1]);
        assert_eq!(sched.offsets, vec![0, 4, 7, 8]);
        assert_eq!(sched.total, 9);
        assert_eq!(sched.max_lanes(), 4);
        assert_eq!(sched.steps(), 4);
        let empty = LaneSchedule::from_sorted_lens(&[]);
        assert_eq!(empty.total, 0);
        assert_eq!(empty.max_lanes(), 0);
    }

    #[test]
    fn forward_batch_train_matches_streaming_forward_bitwise() {
        let layer = LstmLayer::new(3, 4, &mut rng());
        // Two ragged lanes, lengths 5 and 3 (sorted descending).
        let lane_inputs: Vec<Vec<Vec<f32>>> = [5usize, 3]
            .iter()
            .enumerate()
            .map(|(lane, &len)| {
                (0..len)
                    .map(|t| {
                        (0..3)
                            .map(|i| ((t * 3 + i + lane * 11) as f32 * 0.7).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let sched = LaneSchedule::from_sorted_lens(&[5, 3]);
        let mut x_cat = vec![0.0f32; sched.total * 3];
        for (i, inputs) in lane_inputs.iter().enumerate() {
            for (t, x) in inputs.iter().enumerate() {
                let r = sched.offsets[t] + i;
                x_cat[r * 3..(r + 1) * 3].copy_from_slice(x);
            }
        }
        let mut tape = LayerTape::default();
        layer.forward_batch_train(&sched, &x_cat, &mut tape, false);

        let mut h = vec![0.0f32; 4];
        for (i, inputs) in lane_inputs.iter().enumerate() {
            let mut state = LstmState::zeros(4);
            for (t, x) in inputs.iter().enumerate() {
                layer.forward(x, &mut state, &mut h);
                let r = sched.offsets[t] + i;
                assert_eq!(
                    &tape.out[r * 4..(r + 1) * 4],
                    h.as_slice(),
                    "lane {i} t {t}"
                );
                assert_eq!(
                    &tape.c[r * 4..(r + 1) * 4],
                    state.c.as_slice(),
                    "cell lane {i} t {t}"
                );
            }
        }
    }

    /// Full numerical gradient check of a single layer through a ragged
    /// two-lane minibatch with a quadratic loss on the outputs.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = LstmLayer::new(3, 4, &mut rng());
        let lane_lens = [5usize, 3];
        let lane_inputs: Vec<Vec<Vec<f32>>> = lane_lens
            .iter()
            .enumerate()
            .map(|(lane, &len)| {
                (0..len)
                    .map(|t| {
                        (0..3)
                            .map(|i| ((t * 3 + i + lane * 7) as f32 * 0.7).sin())
                            .collect()
                    })
                    .collect()
            })
            .collect();

        // Loss: 0.5 * sum_{lane,t} |h_t|^2  =>  dL/dh_t = h_t.
        let forward_loss = |layer: &LstmLayer| -> f32 {
            let mut loss = 0.0;
            for inputs in &lane_inputs {
                let mut state = LstmState::zeros(4);
                let mut h = vec![0.0; 4];
                for x in inputs {
                    layer.forward(x, &mut state, &mut h);
                    loss += 0.5 * h.iter().map(|v| v * v).sum::<f32>();
                }
            }
            loss
        };

        // Analytic gradients through the batched tape.
        let sched = LaneSchedule::from_sorted_lens(&lane_lens);
        let mut x_cat = vec![0.0f32; sched.total * 3];
        for (i, inputs) in lane_inputs.iter().enumerate() {
            for (t, x) in inputs.iter().enumerate() {
                let r = sched.offsets[t] + i;
                x_cat[r * 3..(r + 1) * 3].copy_from_slice(x);
            }
        }
        let mut tape = LayerTape::default();
        layer.forward_batch_train(&sched, &x_cat, &mut tape, false);
        let d_out = tape.out[..sched.total * 4].to_vec();
        let mut wt = Tensor2::zeros(1, 1);
        let mut ut = Tensor2::zeros(1, 1);
        crate::tensor::transpose_into(&layer.w, &mut wt);
        crate::tensor::transpose_into(&layer.u, &mut ut);
        let mut grad = layer.zero_grad();
        let mut d_inputs = vec![0.0f32; sched.total * 3];
        let mut scratch = BpttScratch::default();
        layer.backward_batch(
            &sched,
            &x_cat,
            &tape,
            &d_out,
            &wt,
            &ut,
            &mut grad,
            &mut d_inputs,
            &mut scratch,
        );

        // Numerical check on a sample of W, U, b entries.
        let eps = 1e-2f32;
        let mut checked = 0;
        for idx in [0usize, 7, 15, 23, 40] {
            if idx < layer.w.len() {
                let orig = layer.w.as_slice()[idx];
                layer.w.as_mut_slice()[idx] = orig + eps;
                let lp = forward_loss(&layer);
                layer.w.as_mut_slice()[idx] = orig - eps;
                let lm = forward_loss(&layer);
                layer.w.as_mut_slice()[idx] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.w.as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "w[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        for idx in [0usize, 9, 31] {
            let orig = layer.u.as_slice()[idx];
            layer.u.as_mut_slice()[idx] = orig + eps;
            let lp = forward_loss(&layer);
            layer.u.as_mut_slice()[idx] = orig - eps;
            let lm = forward_loss(&layer);
            layer.u.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.u.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "u[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        for idx in [0usize, 5, 13] {
            let orig = layer.b[idx];
            layer.b[idx] = orig + eps;
            let lp = forward_loss(&layer);
            layer.b[idx] = orig - eps;
            let lm = forward_loss(&layer);
            layer.b[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.b[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "b[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked >= 10);
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panic() {
        LstmLayer::new(0, 4, &mut rng());
    }

    #[test]
    fn forward_batch_matches_single_lane_steps_bitwise() {
        let layer = LstmLayer::new(5, 40, &mut rng()); // > gemm k block once stacked
        let lanes = 6usize;
        let hd = layer.hidden_dim();

        // Reference: step each lane separately for several timesteps.
        let mut ref_states: Vec<LstmState> = (0..lanes).map(|_| LstmState::zeros(hd)).collect();
        // Batched: the same lanes in one state block.
        let mut h = vec![0.0f32; lanes * hd];
        let mut c = vec![0.0f32; lanes * hd];
        let mut z = vec![0.0f32; lanes * 4 * hd];

        for t in 0..9 {
            let xs: Vec<f32> = (0..lanes * 5)
                .map(|i| match (i + t) % 4 {
                    0 => 0.0,
                    1 => 1.0,
                    _ => (((i * 13 + t * 7) % 19) as f32 - 9.0) / 5.0,
                })
                .collect();
            // Dense-input path: the test inputs mix zeros and reals.
            layer.forward_batch(lanes, &xs, &mut h, &mut c, &mut z, false);
            let mut out = vec![0.0f32; hd];
            for (lane, state) in ref_states.iter_mut().enumerate() {
                layer.forward(&xs[lane * 5..(lane + 1) * 5], state, &mut out);
                assert_eq!(
                    &h[lane * hd..(lane + 1) * hd],
                    out.as_slice(),
                    "h lane {lane} t {t}"
                );
                assert_eq!(
                    &c[lane * hd..(lane + 1) * hd],
                    state.c.as_slice(),
                    "c lane {lane} t {t}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "lstm batch input mismatch")]
    fn forward_batch_rejects_bad_block() {
        let layer = LstmLayer::new(3, 4, &mut rng());
        let mut h = vec![0.0; 8];
        let mut c = vec![0.0; 8];
        let mut z = vec![0.0; 32];
        layer.forward_batch(2, &[0.0; 5], &mut h, &mut c, &mut z, true);
    }
}
