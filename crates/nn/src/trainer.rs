//! Truncated-BPTT training over variable-length sequences with
//! deterministic data-parallel gradient accumulation.
//!
//! Each optimizer step gathers a minibatch of chunk references, partitions
//! it into fixed-size lane groups ([`GRAD_TASK_LANES`] chunks each), and
//! runs one [`icsad_runtime::Task`] per group on scoped workers
//! ([`icsad_runtime::run_scoped`]). A task batches its chunks as lanes of a
//! single [`LstmClassifier::train_batch`] call into a task-private gradient
//! buffer, so the floating-point accumulation order inside a task is a pure
//! function of the minibatch data. Task outputs come back in task order and
//! merge through a fixed pairwise tree reduction, so the final gradient —
//! and therefore the trained weights — is **bit-identical** across worker
//! counts, including the single-threaded run (pinned by the
//! `training_parity` proptest suite).

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use icsad_runtime::{run_scoped, Poll, Schedule, Task};

use crate::adam::{Adam, AdamConfig};
use crate::model::{BackwardPack, Gradients, LstmClassifier, TrainScratch};

/// Chunks (BPTT lanes) handled by one gradient task. Small enough that a
/// default minibatch (32 chunks) still splits into several tasks for the
/// pool to balance; large enough that the batched kernels amortize weight
/// streaming across lanes.
const GRAD_TASK_LANES: usize = 8;

/// One training sequence: per step, an input vector and the target class
/// the model should predict *at* that step (i.e. the next package's
/// signature given packages up to and including this one).
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    steps: Vec<(Vec<f32>, usize)>,
}

impl Sequence {
    /// Wraps `(input, target)` steps.
    pub fn new(steps: Vec<(Vec<f32>, usize)>) -> Self {
        Sequence { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[(Vec<f32>, usize)] {
        &self.steps
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Truncated-BPTT chunk length.
    pub chunk_len: usize,
    /// Number of chunks accumulated per optimizer step.
    pub batch_chunks: usize,
    /// Adam step size.
    pub learning_rate: f32,
    /// Global-norm gradient clip (0 disables clipping).
    pub grad_clip: f32,
    /// Worker threads for gradient computation (0 = all available cores).
    pub num_threads: usize,
    /// Seed for chunk shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 10,
            chunk_len: 32,
            batch_chunks: 32,
            learning_rate: 5e-3,
            grad_clip: 5.0,
            num_threads: 0,
            shuffle_seed: 0,
        }
    }
}

/// Why a [`TrainingConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainerConfigError {
    /// `chunk_len` was zero — every chunk would be empty.
    ZeroChunkLen,
    /// `batch_chunks` was zero — no optimizer step could ever form.
    ZeroBatchChunks,
}

impl std::fmt::Display for TrainerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerConfigError::ZeroChunkLen => write!(f, "chunk_len must be positive"),
            TrainerConfigError::ZeroBatchChunks => write!(f, "batch_chunks must be positive"),
        }
    }
}

impl std::error::Error for TrainerConfigError {}

impl TrainingConfig {
    /// Checks the configuration invariants [`Trainer::try_new`] relies on.
    pub fn validate(&self) -> Result<(), TrainerConfigError> {
        if self.chunk_len == 0 {
            return Err(TrainerConfigError::ZeroChunkLen);
        }
        if self.batch_chunks == 0 {
            return Err(TrainerConfigError::ZeroBatchChunks);
        }
        Ok(())
    }

    /// Worker threads this configuration resolves to: `num_threads`, or all
    /// available cores (capped at 16) when it is zero.
    pub fn resolved_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            self.num_threads
        }
    }
}

/// Loss/accuracy statistics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean cross-entropy per prediction.
    pub mean_loss: f64,
    /// Top-1 training accuracy.
    pub accuracy: f64,
    /// Number of prediction targets trained on this epoch.
    pub targets: usize,
}

/// Trains an [`LstmClassifier`] with truncated BPTT and Adam.
///
/// The trainer owns the optimizer state, so repeated [`Trainer::fit`] calls
/// continue training (used by the probabilistic-noise pipeline, which
/// re-samples noisy sequences every epoch).
#[derive(Debug)]
pub struct Trainer {
    config: TrainingConfig,
    adam: Adam,
}

/// A chunk reference: sequence index plus step range.
#[derive(Debug, Clone, Copy)]
struct ChunkRef {
    seq: usize,
    start: usize,
    len: usize,
}

impl Trainer {
    /// Creates a trainer, validating the configuration.
    pub fn try_new(config: TrainingConfig) -> Result<Self, TrainerConfigError> {
        config.validate()?;
        let adam = Adam::new(AdamConfig {
            learning_rate: config.learning_rate,
            ..AdamConfig::default()
        });
        Ok(Trainer { config, adam })
    }

    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` or `batch_chunks` is zero; see
    /// [`Trainer::try_new`] for the fallible variant.
    pub fn new(config: TrainingConfig) -> Self {
        match Trainer::try_new(config) {
            Ok(trainer) => trainer,
            Err(err) => panic!("{err}"),
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains for `config.epochs` passes over `sequences`, returning
    /// per-epoch statistics.
    pub fn fit(&mut self, model: &mut LstmClassifier, sequences: &[Sequence]) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            stats.push(self.fit_epoch(model, sequences, epoch));
        }
        stats
    }

    /// Runs a single epoch (used by pipelines that regenerate noisy inputs
    /// between epochs); `epoch` only tags the returned stats.
    pub fn fit_epoch(
        &mut self,
        model: &mut LstmClassifier,
        sequences: &[Sequence],
        epoch: usize,
    ) -> EpochStats {
        let mut chunks = self.chunk_refs(sequences);
        let mut rng = ChaCha12Rng::seed_from_u64(self.config.shuffle_seed ^ (epoch as u64) << 17);
        chunks.shuffle(&mut rng);

        let threads = self.config.resolved_threads();

        let mut total_loss = 0.0f64;
        let mut total_correct = 0usize;
        let mut total_targets = 0usize;
        let mut grads = model.zero_gradients();
        // Packed transposed weights for the backward kernels: built once per
        // epoch, refreshed after every optimizer step.
        let mut pack = BackwardPack::new(model);
        // Task-private (gradients, scratch) buffers, recycled across
        // minibatches; tasks zero the gradients before accumulating.
        let mut pool: Vec<(Gradients, TrainScratch)> = Vec::new();

        for batch in chunks.chunks(self.config.batch_chunks) {
            let targets_in_batch: usize = batch.iter().map(|c| c.len).sum();
            if targets_in_batch == 0 {
                continue;
            }
            let scale = 1.0 / targets_in_batch as f32;
            grads.zero();
            let (loss, correct) = accumulate_batch(
                model, &pack, sequences, batch, scale, threads, &mut grads, &mut pool,
            );
            total_loss += f64::from(loss);
            total_correct += correct;
            total_targets += targets_in_batch;

            if self.config.grad_clip > 0.0 {
                let norm = grads.global_norm();
                if norm > self.config.grad_clip {
                    grads.scale(self.config.grad_clip / norm);
                }
            }
            let mut slots = model.params_with_grads(&grads);
            self.adam.step(&mut slots);
            pack.refresh(model);
        }

        EpochStats {
            epoch,
            mean_loss: if total_targets > 0 {
                total_loss / total_targets as f64
            } else {
                0.0
            },
            accuracy: if total_targets > 0 {
                total_correct as f64 / total_targets as f64
            } else {
                0.0
            },
            targets: total_targets,
        }
    }

    fn chunk_refs(&self, sequences: &[Sequence]) -> Vec<ChunkRef> {
        let mut out = Vec::new();
        for (si, seq) in sequences.iter().enumerate() {
            let mut start = 0;
            while start < seq.len() {
                let len = self.config.chunk_len.min(seq.len() - start);
                out.push(ChunkRef {
                    seq: si,
                    start,
                    len,
                });
                start += len;
            }
        }
        out
    }
}

/// One partition's gradient accumulation: batches its chunks as BPTT lanes
/// of a single [`LstmClassifier::train_batch`] call into a task-private
/// gradient buffer. The whole partition is one unit of work, so the first
/// poll completes the task.
struct GradTask<'a> {
    model: &'a LstmClassifier,
    pack: &'a BackwardPack,
    sequences: &'a [Sequence],
    chunks: &'a [ChunkRef],
    scale: f32,
    state: Option<(Gradients, TrainScratch)>,
    loss: f32,
    correct: usize,
}

impl Task for GradTask<'_> {
    type Output = (Gradients, TrainScratch, f32, usize);

    fn poll(&mut self, _budget: usize) -> Poll {
        let (grads, scratch) = self
            .state
            .as_mut()
            .expect("gradient task polled after drain");
        grads.zero();
        let lanes: Vec<&[(Vec<f32>, usize)]> = self
            .chunks
            .iter()
            .map(|c| &self.sequences[c.seq].steps()[c.start..c.start + c.len])
            .collect();
        let (loss, correct) = self
            .model
            .train_batch(self.pack, &lanes, scratch, grads, self.scale);
        self.loss = loss;
        self.correct = correct;
        Poll::Complete
    }

    fn complete(self) -> Self::Output {
        let (grads, scratch) = self.state.expect("gradient task completed without state");
        (grads, scratch, self.loss, self.correct)
    }
}

/// Computes gradients for one batch of chunks as one [`GradTask`] per
/// [`GRAD_TASK_LANES`]-chunk partition on scoped pool workers, accumulating
/// into `grads` through a fixed tree reduction. Returns (summed loss,
/// correct count). The result is bit-identical for every `threads` value:
/// the partition and all merge orders depend only on `batch`.
#[allow(clippy::too_many_arguments)]
fn accumulate_batch(
    model: &LstmClassifier,
    pack: &BackwardPack,
    sequences: &[Sequence],
    batch: &[ChunkRef],
    scale: f32,
    threads: usize,
    grads: &mut Gradients,
    pool: &mut Vec<(Gradients, TrainScratch)>,
) -> (f32, usize) {
    let n_tasks = batch.len().div_ceil(GRAD_TASK_LANES);
    let parts = partition(batch, n_tasks);
    while pool.len() < parts.len() {
        pool.push((model.zero_gradients(), TrainScratch::default()));
    }
    let tasks: Vec<GradTask> = parts
        .iter()
        .zip(pool.drain(..parts.len()))
        .map(|(&chunks, state)| GradTask {
            model,
            pack,
            sequences,
            chunks,
            scale,
            state: Some(state),
            loss: 0.0,
            correct: 0,
        })
        .collect();

    let workers = threads.min(tasks.len()).max(1);
    let (outputs, _stats) = run_scoped(tasks, Schedule::Pool { workers });

    // Outputs arrive in task order regardless of which worker ran what.
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    let mut locals: Vec<(Gradients, TrainScratch)> = Vec::with_capacity(outputs.len());
    for out in outputs {
        let (g, s, l, c) = out.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        loss += l;
        correct += c;
        locals.push((g, s));
    }

    // Pairwise tree reduction with a fixed stride order, so the merge does
    // not depend on completion timing or worker count.
    let mut gap = 1;
    while gap < locals.len() {
        let mut i = 0;
        while i + gap < locals.len() {
            let (left, right) = locals.split_at_mut(i + gap);
            left[i].0.add_assign(&right[0].0);
            i += gap * 2;
        }
        gap *= 2;
    }
    grads.add_assign(&locals[0].0);
    pool.append(&mut locals);
    (loss, correct)
}

/// Splits `items` into at most `parts` contiguous slices whose lengths
/// differ by at most one (the first `len % parts` slices get the extra
/// item). Purely data-dependent: never produces empty slices and never
/// depends on worker count.
fn partition<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.clamp(1, items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn onehot(dim: usize, c: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; dim];
        v[c] = 1.0;
        v
    }

    /// A periodic symbol task the LSTM must learn.
    fn cyclic_sequences(n_seqs: usize, len: usize, period: usize) -> Vec<Sequence> {
        (0..n_seqs)
            .map(|s| {
                let steps = (0..len)
                    .map(|t| {
                        let sym = (s + t) % period;
                        (onehot(period, sym), (sym + 1) % period)
                    })
                    .collect();
                Sequence::new(steps)
            })
            .collect()
    }

    #[test]
    fn learns_cyclic_pattern() {
        let period = 5;
        let sequences = cyclic_sequences(4, 60, period);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: period,
            hidden_dims: vec![16],
            num_classes: period,
            seed: 11,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 40,
            learning_rate: 0.02,
            chunk_len: 20,
            batch_chunks: 4,
            num_threads: 2,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &sequences);
        let last = stats.last().unwrap();
        assert!(
            last.accuracy > 0.9,
            "accuracy {:.3} too low (loss {:.3})",
            last.accuracy,
            last.mean_loss
        );
        assert!(last.mean_loss < stats[0].mean_loss);
    }

    #[test]
    fn loss_monotone_tendency() {
        let sequences = cyclic_sequences(2, 40, 3);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 3,
            hidden_dims: vec![8],
            num_classes: 3,
            seed: 13,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 20,
            learning_rate: 0.02,
            num_threads: 1,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &sequences);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss * 0.8);
    }

    #[test]
    fn parallel_and_serial_training_bitwise_identical() {
        // The task partition and merge order are pure functions of the
        // minibatch data, so worker count cannot change a single bit of the
        // trained weights.
        let sequences = cyclic_sequences(6, 30, 4);
        let config = ModelConfig {
            input_dim: 4,
            hidden_dims: vec![8],
            num_classes: 4,
            seed: 17,
        };
        let tc = TrainingConfig {
            epochs: 3,
            learning_rate: 0.01,
            batch_chunks: 8,
            num_threads: 1,
            ..TrainingConfig::default()
        };
        let mut serial = LstmClassifier::new(&config);
        let serial_stats = Trainer::new(tc.clone()).fit(&mut serial, &sequences);
        let mut parallel = LstmClassifier::new(&config);
        let parallel_stats = Trainer::new(TrainingConfig {
            num_threads: 4,
            ..tc
        })
        .fit(&mut parallel, &sequences);

        assert_eq!(serial.to_bytes(), parallel.to_bytes());
        assert_eq!(serial_stats, parallel_stats);
    }

    #[test]
    fn chunking_covers_all_steps() {
        let trainer = Trainer::new(TrainingConfig {
            chunk_len: 7,
            ..TrainingConfig::default()
        });
        let seqs = cyclic_sequences(3, 20, 4);
        let chunks = trainer.chunk_refs(&seqs);
        let total: usize = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 60);
        assert!(chunks.iter().all(|c| c.len <= 7 && c.len > 0));
    }

    #[test]
    fn empty_sequences_yield_empty_stats() {
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 2,
            hidden_dims: vec![4],
            num_classes: 2,
            seed: 1,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 2,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &[]);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].mean_loss, 0.0);
    }

    #[test]
    fn fit_epoch_continues_optimizer_state() {
        let sequences = cyclic_sequences(2, 40, 3);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 3,
            hidden_dims: vec![8],
            num_classes: 3,
            seed: 19,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 1,
            learning_rate: 0.02,
            num_threads: 1,
            ..TrainingConfig::default()
        });
        let mut losses = Vec::new();
        for e in 0..15 {
            losses.push(trainer.fit_epoch(&mut model, &sequences, e).mean_loss);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.8));
    }

    #[test]
    fn try_new_rejects_zero_chunk_len() {
        let err = Trainer::try_new(TrainingConfig {
            chunk_len: 0,
            ..TrainingConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, TrainerConfigError::ZeroChunkLen);
        assert_eq!(err.to_string(), "chunk_len must be positive");
    }

    #[test]
    fn try_new_rejects_zero_batch_chunks() {
        let err = Trainer::try_new(TrainingConfig {
            batch_chunks: 0,
            ..TrainingConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, TrainerConfigError::ZeroBatchChunks);
        assert_eq!(err.to_string(), "batch_chunks must be positive");
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        Trainer::new(TrainingConfig {
            chunk_len: 0,
            ..TrainingConfig::default()
        });
    }

    #[test]
    fn partition_is_balanced_over_ragged_sizes() {
        for len in 0..40usize {
            let items: Vec<u32> = (0..len as u32).collect();
            for parts in 1..10usize {
                let split = partition(&items, parts);
                // Contiguous cover, no empty slices, lengths within one.
                let flat: Vec<u32> = split.iter().flat_map(|s| s.iter().copied()).collect();
                assert_eq!(flat, items, "len {len} parts {parts}");
                if len > 0 {
                    assert!(split.iter().all(|s| !s.is_empty()));
                    let min = split.iter().map(|s| s.len()).min().unwrap();
                    let max = split.iter().map(|s| s.len()).max().unwrap();
                    assert!(max - min <= 1, "len {len} parts {parts}: {min}..{max}");
                    assert_eq!(split.len(), parts.min(len));
                }
            }
        }
    }
}
