//! Truncated-BPTT training over variable-length sequences with
//! data-parallel gradient accumulation.

use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::adam::{Adam, AdamConfig};
use crate::model::{Gradients, LstmClassifier};

/// One training sequence: per step, an input vector and the target class
/// the model should predict *at* that step (i.e. the next package's
/// signature given packages up to and including this one).
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    steps: Vec<(Vec<f32>, usize)>,
}

impl Sequence {
    /// Wraps `(input, target)` steps.
    pub fn new(steps: Vec<(Vec<f32>, usize)>) -> Self {
        Sequence { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[(Vec<f32>, usize)] {
        &self.steps
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Truncated-BPTT chunk length.
    pub chunk_len: usize,
    /// Number of chunks accumulated per optimizer step.
    pub batch_chunks: usize,
    /// Adam step size.
    pub learning_rate: f32,
    /// Global-norm gradient clip (0 disables clipping).
    pub grad_clip: f32,
    /// Worker threads for gradient computation (0 = all available cores).
    pub num_threads: usize,
    /// Seed for chunk shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            epochs: 10,
            chunk_len: 32,
            batch_chunks: 32,
            learning_rate: 5e-3,
            grad_clip: 5.0,
            num_threads: 0,
            shuffle_seed: 0,
        }
    }
}

/// Loss/accuracy statistics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean cross-entropy per prediction.
    pub mean_loss: f64,
    /// Top-1 training accuracy.
    pub accuracy: f64,
}

/// Trains an [`LstmClassifier`] with truncated BPTT and Adam.
///
/// The trainer owns the optimizer state, so repeated [`Trainer::fit`] calls
/// continue training (used by the probabilistic-noise pipeline, which
/// re-samples noisy sequences every epoch).
#[derive(Debug)]
pub struct Trainer {
    config: TrainingConfig,
    adam: Adam,
}

/// A chunk reference: sequence index plus step range.
#[derive(Debug, Clone, Copy)]
struct ChunkRef {
    seq: usize,
    start: usize,
    len: usize,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` or `batch_chunks` is zero.
    pub fn new(config: TrainingConfig) -> Self {
        assert!(config.chunk_len > 0, "chunk_len must be positive");
        assert!(config.batch_chunks > 0, "batch_chunks must be positive");
        let adam = Adam::new(AdamConfig {
            learning_rate: config.learning_rate,
            ..AdamConfig::default()
        });
        Trainer { config, adam }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Trains for `config.epochs` passes over `sequences`, returning
    /// per-epoch statistics.
    pub fn fit(&mut self, model: &mut LstmClassifier, sequences: &[Sequence]) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            stats.push(self.fit_epoch(model, sequences, epoch));
        }
        stats
    }

    /// Runs a single epoch (used by pipelines that regenerate noisy inputs
    /// between epochs); `epoch` only tags the returned stats.
    pub fn fit_epoch(
        &mut self,
        model: &mut LstmClassifier,
        sequences: &[Sequence],
        epoch: usize,
    ) -> EpochStats {
        let mut chunks = self.chunk_refs(sequences);
        let mut rng = ChaCha12Rng::seed_from_u64(self.config.shuffle_seed ^ (epoch as u64) << 17);
        chunks.shuffle(&mut rng);

        let threads = if self.config.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            self.config.num_threads
        };

        let mut total_loss = 0.0f64;
        let mut total_correct = 0usize;
        let mut total_targets = 0usize;
        let mut grads = model.zero_gradients();

        for batch in chunks.chunks(self.config.batch_chunks) {
            let targets_in_batch: usize = batch.iter().map(|c| c.len).sum();
            if targets_in_batch == 0 {
                continue;
            }
            let scale = 1.0 / targets_in_batch as f32;
            grads.zero();
            let (loss, correct) =
                accumulate_batch(model, sequences, batch, scale, threads, &mut grads);
            total_loss += f64::from(loss);
            total_correct += correct;
            total_targets += targets_in_batch;

            if self.config.grad_clip > 0.0 {
                let norm = grads.global_norm();
                if norm > self.config.grad_clip {
                    grads.scale(self.config.grad_clip / norm);
                }
            }
            let mut slots = model.params_with_grads(&grads);
            self.adam.step(&mut slots);
        }

        EpochStats {
            epoch,
            mean_loss: if total_targets > 0 {
                total_loss / total_targets as f64
            } else {
                0.0
            },
            accuracy: if total_targets > 0 {
                total_correct as f64 / total_targets as f64
            } else {
                0.0
            },
        }
    }

    fn chunk_refs(&self, sequences: &[Sequence]) -> Vec<ChunkRef> {
        let mut out = Vec::new();
        for (si, seq) in sequences.iter().enumerate() {
            let mut start = 0;
            while start < seq.len() {
                let len = self.config.chunk_len.min(seq.len() - start);
                out.push(ChunkRef {
                    seq: si,
                    start,
                    len,
                });
                start += len;
            }
        }
        out
    }
}

/// Computes gradients for one batch of chunks, splitting the work across
/// `threads` scoped workers. Returns (summed loss, correct count).
fn accumulate_batch(
    model: &LstmClassifier,
    sequences: &[Sequence],
    batch: &[ChunkRef],
    scale: f32,
    threads: usize,
    grads: &mut Gradients,
) -> (f32, usize) {
    let threads = threads.max(1).min(batch.len().max(1));
    if threads == 1 {
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for chunk in batch {
            let (l, c) = train_chunk(model, sequences, chunk, scale, grads);
            loss += l;
            correct += c;
        }
        return (loss, correct);
    }

    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for part in partition(batch, threads) {
            handles.push(scope.spawn(move || {
                let mut local = model.zero_gradients();
                let mut loss = 0.0f32;
                let mut correct = 0usize;
                for chunk in part {
                    let (l, c) = train_chunk(model, sequences, chunk, scale, &mut local);
                    loss += l;
                    correct += c;
                }
                (local, loss, correct)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("training worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut loss = 0.0f32;
    let mut correct = 0usize;
    for (local, l, c) in results {
        grads.add_assign(&local);
        loss += l;
        correct += c;
    }
    (loss, correct)
}

fn train_chunk(
    model: &LstmClassifier,
    sequences: &[Sequence],
    chunk: &ChunkRef,
    scale: f32,
    grads: &mut Gradients,
) -> (f32, usize) {
    let steps = &sequences[chunk.seq].steps()[chunk.start..chunk.start + chunk.len];
    let inputs: Vec<Vec<f32>> = steps.iter().map(|(x, _)| x.clone()).collect();
    let targets: Vec<usize> = steps.iter().map(|&(_, t)| t).collect();
    model.train_sequence(&inputs, &targets, grads, scale)
}

fn partition(batch: &[ChunkRef], parts: usize) -> Vec<&[ChunkRef]> {
    let per = batch.len().div_ceil(parts);
    batch.chunks(per.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn onehot(dim: usize, c: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; dim];
        v[c] = 1.0;
        v
    }

    /// A periodic symbol task the LSTM must learn.
    fn cyclic_sequences(n_seqs: usize, len: usize, period: usize) -> Vec<Sequence> {
        (0..n_seqs)
            .map(|s| {
                let steps = (0..len)
                    .map(|t| {
                        let sym = (s + t) % period;
                        (onehot(period, sym), (sym + 1) % period)
                    })
                    .collect();
                Sequence::new(steps)
            })
            .collect()
    }

    #[test]
    fn learns_cyclic_pattern() {
        let period = 5;
        let sequences = cyclic_sequences(4, 60, period);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: period,
            hidden_dims: vec![16],
            num_classes: period,
            seed: 11,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 40,
            learning_rate: 0.02,
            chunk_len: 20,
            batch_chunks: 4,
            num_threads: 2,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &sequences);
        let last = stats.last().unwrap();
        assert!(
            last.accuracy > 0.9,
            "accuracy {:.3} too low (loss {:.3})",
            last.accuracy,
            last.mean_loss
        );
        assert!(last.mean_loss < stats[0].mean_loss);
    }

    #[test]
    fn loss_monotone_tendency() {
        let sequences = cyclic_sequences(2, 40, 3);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 3,
            hidden_dims: vec![8],
            num_classes: 3,
            seed: 13,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 20,
            learning_rate: 0.02,
            num_threads: 1,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &sequences);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss * 0.8);
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // Gradient sums are order-independent up to f32 rounding, so the two
        // models should end up close after a couple of epochs.
        let sequences = cyclic_sequences(6, 30, 4);
        let config = ModelConfig {
            input_dim: 4,
            hidden_dims: vec![8],
            num_classes: 4,
            seed: 17,
        };
        let tc = TrainingConfig {
            epochs: 3,
            learning_rate: 0.01,
            num_threads: 1,
            ..TrainingConfig::default()
        };
        let mut serial = LstmClassifier::new(&config);
        Trainer::new(tc.clone()).fit(&mut serial, &sequences);
        let mut parallel = LstmClassifier::new(&config);
        Trainer::new(TrainingConfig {
            num_threads: 4,
            ..tc
        })
        .fit(&mut parallel, &sequences);

        let probe = onehot(4, 2);
        let mut ps = vec![0.0; 4];
        let mut pp = vec![0.0; 4];
        serial.step(&mut serial.new_state(), &probe, &mut ps);
        parallel.step(&mut parallel.new_state(), &probe, &mut pp);
        for (a, b) in ps.iter().zip(pp.iter()) {
            assert!((a - b).abs() < 0.05, "serial {a} vs parallel {b}");
        }
    }

    #[test]
    fn chunking_covers_all_steps() {
        let trainer = Trainer::new(TrainingConfig {
            chunk_len: 7,
            ..TrainingConfig::default()
        });
        let seqs = cyclic_sequences(3, 20, 4);
        let chunks = trainer.chunk_refs(&seqs);
        let total: usize = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 60);
        assert!(chunks.iter().all(|c| c.len <= 7 && c.len > 0));
    }

    #[test]
    fn empty_sequences_yield_empty_stats() {
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 2,
            hidden_dims: vec![4],
            num_classes: 2,
            seed: 1,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 2,
            ..TrainingConfig::default()
        });
        let stats = trainer.fit(&mut model, &[]);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].mean_loss, 0.0);
    }

    #[test]
    fn fit_epoch_continues_optimizer_state() {
        let sequences = cyclic_sequences(2, 40, 3);
        let mut model = LstmClassifier::new(&ModelConfig {
            input_dim: 3,
            hidden_dims: vec![8],
            num_classes: 3,
            seed: 19,
        });
        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 1,
            learning_rate: 0.02,
            num_threads: 1,
            ..TrainingConfig::default()
        });
        let mut losses = Vec::new();
        for e in 0..15 {
            losses.push(trainer.fit_epoch(&mut model, &sequences, e).mean_loss);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.8));
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        Trainer::new(TrainingConfig {
            chunk_len: 0,
            ..TrainingConfig::default()
        });
    }
}
