//! Property-based tests for the neural-network substrate.

use icsad_nn::activations::{sigmoid, softmax_in_place};
use icsad_nn::loss::{in_top_k, softmax_cross_entropy, top_k};
use icsad_nn::{LstmClassifier, ModelConfig};
use proptest::prelude::*;

proptest! {
    /// Softmax output is always a probability distribution.
    #[test]
    fn softmax_is_distribution(logits in proptest::collection::vec(-50f32..50.0, 1..64)) {
        let mut v = logits;
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Sigmoid is bounded, monotone, and symmetric.
    #[test]
    fn sigmoid_properties(a in -100f32..100.0, b in -100f32..100.0) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
        prop_assert!((sigmoid(-a) - (1.0 - sa)).abs() < 1e-5);
    }

    /// Membership in top-k is monotone in k, and k = len admits everything.
    #[test]
    fn top_k_monotone(probs in proptest::collection::vec(0f32..1.0, 1..32), target_raw in any::<usize>()) {
        let target = target_raw % probs.len();
        let mut was_in = false;
        for k in 1..=probs.len() {
            let now_in = in_top_k(&probs, target, k);
            prop_assert!(!was_in || now_in, "membership must be monotone in k");
            was_in = now_in;
        }
        prop_assert!(in_top_k(&probs, target, probs.len()));
    }

    /// `top_k` returns distinct indices sorted by descending probability.
    #[test]
    fn top_k_sorted_and_distinct(probs in proptest::collection::vec(0f32..1.0, 1..40), k in 1usize..40) {
        let idx = top_k(&probs, k);
        prop_assert_eq!(idx.len(), k.min(probs.len()));
        let set: std::collections::HashSet<_> = idx.iter().collect();
        prop_assert_eq!(set.len(), idx.len());
        for w in idx.windows(2) {
            prop_assert!(probs[w[0]] >= probs[w[1]]);
        }
    }

    /// Cross-entropy loss is non-negative and equals -ln(p_target).
    #[test]
    fn cross_entropy_nonnegative(
        logits in proptest::collection::vec(-20f32..20.0, 2..32),
        target_raw in any::<usize>(),
    ) {
        let target = target_raw % logits.len();
        let mut probs = logits;
        let loss = softmax_cross_entropy(&mut probs, target);
        prop_assert!(loss >= -1e-6);
        prop_assert!((loss + probs[target].max(1e-12).ln()).abs() < 1e-4);
    }

    /// Model serialization round-trips for arbitrary architectures.
    #[test]
    fn model_serialization_round_trip(
        input_dim in 1usize..12,
        h1 in 1usize..10,
        h2 in 0usize..10,
        classes in 1usize..12,
        seed in any::<u64>(),
    ) {
        let hidden = if h2 == 0 { vec![h1] } else { vec![h1, h2] };
        let model = LstmClassifier::new(&ModelConfig {
            input_dim,
            hidden_dims: hidden,
            num_classes: classes,
            seed,
        });
        let back = LstmClassifier::from_bytes(&model.to_bytes()).unwrap();
        prop_assert_eq!(back, model);
    }

    /// The streaming step always emits a probability distribution,
    /// whatever the input values.
    #[test]
    fn step_emits_distribution(inputs in proptest::collection::vec(-10f32..10.0, 5)) {
        let model = LstmClassifier::new(&ModelConfig {
            input_dim: 5,
            hidden_dims: vec![6],
            num_classes: 4,
            seed: 1,
        });
        let mut state = model.new_state();
        let mut probs = vec![0.0f32; 4];
        model.step(&mut state, &inputs, &mut probs);
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// Batched stepping is bit-identical to per-lane streaming steps:
    /// random architectures, random lane counts, random (partly sparse)
    /// inputs, several timesteps deep.
    #[test]
    fn forward_batch_bitwise_equals_streaming_steps(
        h1 in 1usize..10,
        h2 in 0usize..10,
        input_dim in 1usize..12,
        classes in 1usize..12,
        lanes in 1usize..9,
        steps in 1usize..6,
        raw in proptest::collection::vec(-4f32..4.0, 8 * 12 * 6),
        sparsity in proptest::collection::vec(proptest::bool::ANY, 8 * 12 * 6),
        seed in any::<u64>(),
    ) {
        let hidden_dims = if h2 == 0 { vec![h1] } else { vec![h1, h2] };
        let model = LstmClassifier::new(&ModelConfig {
            input_dim,
            hidden_dims,
            num_classes: classes,
            seed,
        });
        let mut batch_states: Vec<_> = (0..lanes).map(|_| model.new_state()).collect();
        let mut ref_states = batch_states.clone();
        let mut scratch = model.batch_scratch();
        let lane_idx: Vec<usize> = (0..lanes).collect();
        let mut probs = vec![0.0f32; lanes * classes];
        let mut single = vec![0.0f32; classes];

        for t in 0..steps {
            let xs: Vec<f32> = (0..lanes * input_dim)
                .map(|i| {
                    let j = (t * lanes * input_dim + i) % raw.len();
                    if sparsity[j] { 0.0 } else { raw[j] }
                })
                .collect();
            model.forward_batch(&mut scratch, &mut batch_states, &lane_idx, &xs, &mut probs);
            for lane in 0..lanes {
                model.step(
                    &mut ref_states[lane],
                    &xs[lane * input_dim..(lane + 1) * input_dim],
                    &mut single,
                );
                prop_assert_eq!(
                    &probs[lane * classes..(lane + 1) * classes],
                    single.as_slice(),
                    "lane {} step {}", lane, t
                );
            }
        }
        for (a, b) in batch_states.iter().zip(ref_states.iter()) {
            prop_assert_eq!(a.layer_states(), b.layer_states());
        }
    }
}
