//! Pins the trainer's determinism contract: data-parallel training is
//! **bit-identical** to sequential training — same final weights, same
//! epoch statistics — for every worker count, because the minibatch task
//! partition and the tree-reduction merge order depend only on the data.
//!
//! Together with the backward-kernel parity suite in
//! `crates/simd/tests/parity.rs` (SIMD ≡ scalar per FMA policy), this means
//! a commissioning run is reproducible bit-for-bit across machine core
//! counts and, under a pinned kernel policy, across SIMD backends.

use icsad_nn::{LstmClassifier, ModelConfig, Sequence, Trainer, TrainingConfig};
use proptest::prelude::*;

fn onehot(dim: usize, c: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    v[c] = 1.0;
    v
}

/// Builds ragged sequences of one-hot steps from a flat symbol pool.
fn sequences_from(symbols: &[usize], lens: &[usize], dim: usize) -> Vec<Sequence> {
    let mut at = 0usize;
    lens.iter()
        .map(|&len| {
            let steps = (0..len)
                .map(|t| {
                    let sym = symbols[(at + t) % symbols.len()] % dim;
                    let next = symbols[(at + t + 1) % symbols.len()] % dim;
                    (onehot(dim, sym), next)
                })
                .collect();
            at += len;
            Sequence::new(steps)
        })
        .collect()
}

fn train(config: &ModelConfig, tc: &TrainingConfig, sequences: &[Sequence]) -> (Vec<u8>, String) {
    let mut model = LstmClassifier::new(config);
    let stats = Trainer::new(tc.clone()).fit(&mut model, sequences);
    // Render stats through f64 bit patterns so the comparison is exact.
    let rendered: String = stats
        .iter()
        .map(|s| {
            format!(
                "{}:{:016x}:{:016x};",
                s.epoch,
                s.mean_loss.to_bits(),
                s.accuracy.to_bits()
            )
        })
        .collect();
    (model.to_bytes(), rendered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Final weights and epoch statistics are bitwise equal across worker
    /// counts (1, 2, 5) for random architectures, ragged sequence sets,
    /// chunking geometries, and shuffle seeds.
    #[test]
    fn worker_count_never_changes_trained_weights(
        h1 in 1usize..7,
        h2 in 0usize..7,
        dim in 2usize..6,
        lens in proptest::collection::vec(1usize..28, 1..4),
        symbols in proptest::collection::vec(0usize..6, 8..40),
        chunk_len in 1usize..12,
        batch_chunks in 1usize..6,
        model_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let hidden_dims = if h2 == 0 { vec![h1] } else { vec![h1, h2] };
        let config = ModelConfig {
            input_dim: dim,
            hidden_dims,
            num_classes: dim,
            seed: model_seed,
        };
        let sequences = sequences_from(&symbols, &lens, dim);
        let tc = TrainingConfig {
            epochs: 2,
            chunk_len,
            batch_chunks,
            learning_rate: 0.01,
            num_threads: 1,
            shuffle_seed,
            ..TrainingConfig::default()
        };

        let (bytes_1, stats_1) = train(&config, &tc, &sequences);
        for threads in [2usize, 5] {
            let (bytes_n, stats_n) = train(
                &config,
                &TrainingConfig { num_threads: threads, ..tc.clone() },
                &sequences,
            );
            prop_assert_eq!(&bytes_1, &bytes_n, "weights diverge at {} threads", threads);
            prop_assert_eq!(&stats_1, &stats_n, "stats diverge at {} threads", threads);
        }
    }
}

/// Training twice from the same seed on the same data is bit-identical —
/// the whole pipeline (shuffle, partition, kernels, Adam) is deterministic.
#[test]
fn repeated_runs_are_bit_identical() {
    let symbols: Vec<usize> = (0..50).map(|i| (i * 7 + 3) % 5).collect();
    let sequences = sequences_from(&symbols, &[23, 9, 17], 5);
    let config = ModelConfig {
        input_dim: 5,
        hidden_dims: vec![9, 6],
        num_classes: 5,
        seed: 42,
    };
    let tc = TrainingConfig {
        epochs: 3,
        chunk_len: 7,
        batch_chunks: 3,
        num_threads: 3,
        shuffle_seed: 99,
        ..TrainingConfig::default()
    };
    let (a_bytes, a_stats) = {
        let mut m = LstmClassifier::new(&config);
        let s = Trainer::new(tc.clone()).fit(&mut m, &sequences);
        (m.to_bytes(), s)
    };
    let (b_bytes, b_stats) = {
        let mut m = LstmClassifier::new(&config);
        let s = Trainer::new(tc).fit(&mut m, &sequences);
        (m.to_bytes(), s)
    };
    assert_eq!(a_bytes, b_bytes);
    assert_eq!(a_stats, b_stats);
}
