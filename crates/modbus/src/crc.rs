//! CRC-16/Modbus checksum.
//!
//! Polynomial `0x8005` (reflected form `0xA001`), initial value `0xFFFF`, no
//! final XOR; transmitted little-endian on the wire.

/// Computes the CRC-16/Modbus checksum of `data`.
///
/// # Examples
///
/// ```
/// // Standard check value for the ASCII string "123456789".
/// assert_eq!(icsad_modbus::crc::crc16(b"123456789"), 0x4B37);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Appends the little-endian CRC of `data` to the end of `data` and returns
/// the combined buffer.
pub fn append_crc(mut data: Vec<u8>) -> Vec<u8> {
    let crc = crc16(&data);
    data.extend_from_slice(&crc.to_le_bytes());
    data
}

/// Verifies that the last two bytes of `buf` are the little-endian CRC of the
/// preceding bytes. Returns the payload (without CRC) on success.
pub fn verify_crc(buf: &[u8]) -> Option<&[u8]> {
    if buf.len() < 2 {
        return None;
    }
    let (payload, crc_bytes) = buf.split_at(buf.len() - 2);
    let expected = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
    if crc16(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc16(b"123456789"), 0x4B37);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn known_modbus_frame() {
        // Read holding registers: slave 1, fc 3, start 0, count 1.
        // Well-known reference frame: 01 03 00 00 00 01 84 0A.
        let frame = [0x01u8, 0x03, 0x00, 0x00, 0x00, 0x01];
        assert_eq!(crc16(&frame), u16::from_le_bytes([0x84, 0x0A]));
    }

    #[test]
    fn append_and_verify_round_trip() {
        let buf = append_crc(vec![0x11, 0x22, 0x33]);
        assert_eq!(buf.len(), 5);
        assert_eq!(verify_crc(&buf), Some(&[0x11, 0x22, 0x33][..]));
    }

    #[test]
    fn verify_detects_corruption() {
        let mut buf = append_crc(vec![0x11, 0x22, 0x33]);
        buf[1] ^= 0x01;
        assert_eq!(verify_crc(&buf), None);
    }

    #[test]
    fn verify_detects_crc_corruption() {
        let mut buf = append_crc(vec![0x11, 0x22, 0x33]);
        let last = buf.len() - 1;
        buf[last] ^= 0x80;
        assert_eq!(verify_crc(&buf), None);
    }

    #[test]
    fn verify_rejects_short_buffers() {
        assert_eq!(verify_crc(&[]), None);
        assert_eq!(verify_crc(&[0x01]), None);
    }

    #[test]
    fn single_bit_sensitivity() {
        let a = crc16(&[0b0000_0000]);
        let b = crc16(&[0b0000_0001]);
        assert_ne!(a, b);
    }
}
