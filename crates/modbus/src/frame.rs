//! Modbus RTU frame encoding and decoding.

use std::error::Error;
use std::fmt;

use crate::crc::{append_crc, crc16};
use crate::function::FunctionCode;

/// Maximum Modbus RTU application data unit size in bytes.
pub const MAX_ADU_LEN: usize = 256;

/// Errors produced when decoding a [`Frame`] from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// Fewer than the 4 bytes (address + function + CRC) every frame needs.
    TooShort {
        /// Observed buffer length.
        len: usize,
    },
    /// Longer than the Modbus RTU maximum of 256 bytes.
    TooLong {
        /// Observed buffer length.
        len: usize,
    },
    /// The trailing CRC did not match the frame contents.
    CrcMismatch {
        /// CRC computed over the received payload.
        computed: u16,
        /// CRC found on the wire.
        received: u16,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort { len } => write!(f, "frame too short: {len} bytes"),
            FrameError::TooLong { len } => write!(f, "frame too long: {len} bytes"),
            FrameError::CrcMismatch { computed, received } => write!(
                f,
                "crc mismatch: computed 0x{computed:04X}, received 0x{received:04X}"
            ),
        }
    }
}

impl Error for FrameError {}

/// A Modbus RTU frame: station address, function code and payload.
///
/// The CRC is computed on [`Frame::encode`] and verified on
/// [`Frame::decode`]; frames held in memory are always CRC-consistent.
///
/// # Examples
///
/// ```
/// use icsad_modbus::{Frame, FunctionCode};
///
/// let f = Frame::new(4, FunctionCode::WriteMultipleRegisters, vec![0x00, 0x00]);
/// assert_eq!(f.address(), 4);
/// assert_eq!(Frame::decode(&f.encode())?, f);
/// # Ok::<(), icsad_modbus::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    address: u8,
    function: FunctionCode,
    payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the payload would make the encoded frame exceed
    /// [`MAX_ADU_LEN`].
    pub fn new(address: u8, function: FunctionCode, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() + 4 <= MAX_ADU_LEN,
            "payload of {} bytes exceeds the RTU maximum",
            payload.len()
        );
        Frame {
            address,
            function,
            payload,
        }
    }

    /// Station (slave) address.
    pub fn address(&self) -> u8 {
        self.address
    }

    /// Function code.
    pub fn function(&self) -> FunctionCode {
        self.function
    }

    /// Application payload (without address, function code or CRC).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total encoded length in bytes (address + function + payload + CRC).
    pub fn encoded_len(&self) -> usize {
        self.payload.len() + 4
    }

    /// Encodes the frame to wire bytes with a valid trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.push(self.address);
        buf.push(self.function.code());
        buf.extend_from_slice(&self.payload);
        append_crc(buf)
    }

    /// Encodes the frame with a deliberately corrupted CRC.
    ///
    /// This exists for the simulator's noise and attack models: real captures
    /// contain a small rate of bad-CRC packages (the `crc rate` feature of
    /// the dataset).
    pub fn encode_with_bad_crc(&self) -> Vec<u8> {
        let mut buf = self.encode();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        buf
    }

    /// Decodes a frame from wire bytes, verifying the CRC.
    ///
    /// # Errors
    ///
    /// * [`FrameError::TooShort`] / [`FrameError::TooLong`] for size
    ///   violations.
    /// * [`FrameError::CrcMismatch`] if the checksum fails.
    pub fn decode(buf: &[u8]) -> Result<Self, FrameError> {
        if buf.len() < 4 {
            return Err(FrameError::TooShort { len: buf.len() });
        }
        if buf.len() > MAX_ADU_LEN {
            return Err(FrameError::TooLong { len: buf.len() });
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 2);
        let received = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
        let computed = crc16(body);
        if computed != received {
            return Err(FrameError::CrcMismatch { computed, received });
        }
        Ok(Frame {
            address: body[0],
            function: FunctionCode::from(body[1]),
            payload: body[2..].to_vec(),
        })
    }

    /// Decodes a frame without verifying the CRC, reporting whether the CRC
    /// was valid.
    ///
    /// The traffic monitor of the paper records packages with bad checksums
    /// rather than dropping them (the `crc rate` feature), so the feature
    /// extractor needs the lenient path.
    ///
    /// # Errors
    ///
    /// Returns size violations only.
    pub fn decode_lenient(buf: &[u8]) -> Result<(Self, bool), FrameError> {
        let (view, crc_ok) = FrameView::decode_lenient(buf)?;
        Ok((view.to_frame(), crc_ok))
    }
}

/// A borrowed view of a Modbus RTU frame: the zero-copy counterpart of
/// [`Frame`].
///
/// [`Frame::decode_lenient`] allocates a fresh payload `Vec` per call —
/// one heap allocation per monitored frame, forever, on the engine's hot
/// path. `FrameView` borrows the payload straight out of the wire buffer
/// instead, so per-frame feature extraction touches the allocator zero
/// times. Convert with [`FrameView::to_frame`] when an owned frame is
/// actually needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    address: u8,
    function: FunctionCode,
    payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Station (slave) address.
    pub fn address(&self) -> u8 {
        self.address
    }

    /// Function code.
    pub fn function(&self) -> FunctionCode {
        self.function
    }

    /// Application payload (without address, function code or CRC),
    /// borrowed from the wire buffer.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Total encoded length in bytes (address + function + payload + CRC).
    pub fn encoded_len(&self) -> usize {
        self.payload.len() + 4
    }

    /// Copies the view into an owned [`Frame`].
    pub fn to_frame(&self) -> Frame {
        Frame {
            address: self.address,
            function: self.function,
            payload: self.payload.to_vec(),
        }
    }

    /// Decodes a borrowed frame without verifying the CRC, reporting whether
    /// the CRC was valid — the allocation-free twin of
    /// [`Frame::decode_lenient`].
    ///
    /// # Errors
    ///
    /// Returns size violations only.
    pub fn decode_lenient(buf: &'a [u8]) -> Result<(Self, bool), FrameError> {
        if buf.len() < 4 {
            return Err(FrameError::TooShort { len: buf.len() });
        }
        if buf.len() > MAX_ADU_LEN {
            return Err(FrameError::TooLong { len: buf.len() });
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 2);
        let received = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
        let crc_ok = crc16(body) == received;
        Ok((
            FrameView {
                address: body[0],
                function: FunctionCode::from(body[1]),
                payload: &body[2..],
            },
            crc_ok,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let f = Frame::new(4, FunctionCode::ReadHoldingRegisters, vec![0, 0, 0, 11]);
        let wire = f.encode();
        assert_eq!(wire.len(), f.encoded_len());
        assert_eq!(Frame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trip() {
        let f = Frame::new(1, FunctionCode::ReadExceptionStatus, vec![]);
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn decode_rejects_short_frames() {
        assert!(matches!(
            Frame::decode(&[1, 2, 3]),
            Err(FrameError::TooShort { len: 3 })
        ));
    }

    #[test]
    fn decode_rejects_long_frames() {
        let buf = vec![0u8; MAX_ADU_LEN + 1];
        assert!(matches!(
            Frame::decode(&buf),
            Err(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_crc() {
        let f = Frame::new(4, FunctionCode::ReadHoldingRegisters, vec![1, 2]);
        let wire = f.encode_with_bad_crc();
        assert!(matches!(
            Frame::decode(&wire),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn lenient_decode_reports_crc_state() {
        let f = Frame::new(4, FunctionCode::WriteMultipleRegisters, vec![9, 9]);
        let (good, ok) = Frame::decode_lenient(&f.encode()).unwrap();
        assert!(ok);
        assert_eq!(good, f);
        let (bad, ok) = Frame::decode_lenient(&f.encode_with_bad_crc()).unwrap();
        assert!(!ok);
        assert_eq!(bad, f); // contents still recovered
    }

    #[test]
    fn unknown_function_codes_survive_round_trip() {
        let f = Frame::new(4, FunctionCode::Other(0x63), vec![0xAB]);
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.function(), FunctionCode::Other(0x63));
    }

    #[test]
    #[should_panic(expected = "exceeds the RTU maximum")]
    fn oversized_payload_panics() {
        Frame::new(1, FunctionCode::ReadCoils, vec![0; MAX_ADU_LEN]);
    }

    #[test]
    fn max_size_frame_round_trips() {
        let f = Frame::new(1, FunctionCode::ReadCoils, vec![7; MAX_ADU_LEN - 4]);
        assert_eq!(f.encoded_len(), MAX_ADU_LEN);
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn view_matches_owned_lenient_decode() {
        let f = Frame::new(4, FunctionCode::WriteMultipleRegisters, vec![9, 9, 7]);
        for wire in [f.encode(), f.encode_with_bad_crc()] {
            let (owned, owned_ok) = Frame::decode_lenient(&wire).unwrap();
            let (view, view_ok) = FrameView::decode_lenient(&wire).unwrap();
            assert_eq!(owned_ok, view_ok);
            assert_eq!(view.to_frame(), owned);
            assert_eq!(view.address(), owned.address());
            assert_eq!(view.function(), owned.function());
            assert_eq!(view.payload(), owned.payload());
            assert_eq!(view.encoded_len(), owned.encoded_len());
        }
        assert!(matches!(
            FrameView::decode_lenient(&[1, 2, 3]),
            Err(FrameError::TooShort { len: 3 })
        ));
        assert!(matches!(
            FrameView::decode_lenient(&[0u8; MAX_ADU_LEN + 1]),
            Err(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = FrameError::CrcMismatch {
            computed: 0x1234,
            received: 0x5678,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x1234") && msg.contains("0x5678"));
    }
}
