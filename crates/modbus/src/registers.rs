//! A holding-register store for the simulated slave device.

/// A bank of 16-bit Modbus holding registers.
///
/// # Examples
///
/// ```
/// use icsad_modbus::RegisterMap;
///
/// let mut regs = RegisterMap::new(16);
/// regs.write(3, 0x1234);
/// assert_eq!(regs.read(3), Some(0x1234));
/// assert_eq!(regs.read(99), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMap {
    regs: Vec<u16>,
}

impl RegisterMap {
    /// Creates a register bank with `len` registers, all zero.
    pub fn new(len: usize) -> Self {
        RegisterMap { regs: vec![0; len] }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if the bank has no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Reads register `addr`, or `None` if out of range.
    pub fn read(&self, addr: u16) -> Option<u16> {
        self.regs.get(addr as usize).copied()
    }

    /// Reads `count` registers starting at `addr`, or `None` if the range is
    /// out of bounds.
    pub fn read_range(&self, addr: u16, count: u16) -> Option<&[u16]> {
        let start = addr as usize;
        let end = start.checked_add(count as usize)?;
        self.regs.get(start..end)
    }

    /// Writes register `addr`. Returns `false` (without writing) if out of
    /// range.
    pub fn write(&mut self, addr: u16, value: u16) -> bool {
        match self.regs.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Writes a run of registers starting at `addr`. Returns `false`
    /// (without writing anything) if the range does not fit.
    pub fn write_range(&mut self, addr: u16, values: &[u16]) -> bool {
        let start = addr as usize;
        let Some(end) = start.checked_add(values.len()) else {
            return false;
        };
        match self.regs.get_mut(start..end) {
            Some(slots) => {
                slots.copy_from_slice(values);
                true
            }
            None => false,
        }
    }

    /// Borrows all registers.
    pub fn as_slice(&self) -> &[u16] {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_single() {
        let mut r = RegisterMap::new(4);
        assert!(r.write(0, 7));
        assert!(r.write(3, 9));
        assert_eq!(r.read(0), Some(7));
        assert_eq!(r.read(3), Some(9));
        assert_eq!(r.read(4), None);
        assert!(!r.write(4, 1));
    }

    #[test]
    fn range_operations() {
        let mut r = RegisterMap::new(8);
        assert!(r.write_range(2, &[10, 11, 12]));
        assert_eq!(r.read_range(2, 3), Some(&[10, 11, 12][..]));
        assert_eq!(r.read_range(6, 3), None);
        assert!(!r.write_range(6, &[1, 2, 3]));
        // Failed write must not partially apply.
        assert_eq!(r.read(6), Some(0));
        assert_eq!(r.read(7), Some(0));
    }

    #[test]
    fn empty_bank() {
        let r = RegisterMap::new(0);
        assert!(r.is_empty());
        assert_eq!(r.read(0), None);
        assert_eq!(r.read_range(0, 0), Some(&[][..]));
    }

    #[test]
    fn zero_count_range_read() {
        let r = RegisterMap::new(4);
        assert_eq!(r.read_range(2, 0), Some(&[][..]));
    }
}
