//! Modbus application-layer function and exception codes.

use std::fmt;

/// Modbus function codes used by the gas-pipeline SCADA system plus the
/// common public codes.
///
/// Unknown or vendor-specific codes round-trip through
/// [`FunctionCode::Other`]; the MFCI attack of the paper (malicious function
/// code injection) produces exactly such frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionCode {
    /// 0x01 — read coils.
    ReadCoils,
    /// 0x02 — read discrete inputs.
    ReadDiscreteInputs,
    /// 0x03 — read holding registers (the gas-pipeline poll command).
    ReadHoldingRegisters,
    /// 0x04 — read input registers.
    ReadInputRegisters,
    /// 0x05 — write single coil.
    WriteSingleCoil,
    /// 0x06 — write single register.
    WriteSingleRegister,
    /// 0x07 — read exception status.
    ReadExceptionStatus,
    /// 0x08 — diagnostics (sub-function coded in the payload); used by the
    /// DoS attack (force-listen-only sub-function).
    Diagnostics,
    /// 0x0F — write multiple coils.
    WriteMultipleCoils,
    /// 0x10 — write multiple registers (the gas-pipeline control command).
    WriteMultipleRegisters,
    /// 0x11 — report slave id; used by the reconnaissance attack.
    ReportSlaveId,
    /// 0x2B — encapsulated interface transport (device identification).
    ReadDeviceIdentification,
    /// Any other (possibly invalid) function code.
    Other(u8),
}

impl FunctionCode {
    /// The raw wire value.
    pub fn code(self) -> u8 {
        match self {
            FunctionCode::ReadCoils => 0x01,
            FunctionCode::ReadDiscreteInputs => 0x02,
            FunctionCode::ReadHoldingRegisters => 0x03,
            FunctionCode::ReadInputRegisters => 0x04,
            FunctionCode::WriteSingleCoil => 0x05,
            FunctionCode::WriteSingleRegister => 0x06,
            FunctionCode::ReadExceptionStatus => 0x07,
            FunctionCode::Diagnostics => 0x08,
            FunctionCode::WriteMultipleCoils => 0x0F,
            FunctionCode::WriteMultipleRegisters => 0x10,
            FunctionCode::ReportSlaveId => 0x11,
            FunctionCode::ReadDeviceIdentification => 0x2B,
            FunctionCode::Other(c) => c,
        }
    }

    /// Returns `true` if this code is one of the publicly assigned Modbus
    /// function codes modelled by this crate.
    pub fn is_standard(self) -> bool {
        !matches!(self, FunctionCode::Other(_))
    }

    /// Returns `true` for codes with the exception-response bit (0x80) set.
    pub fn is_exception_response(self) -> bool {
        self.code() & 0x80 != 0
    }
}

impl From<u8> for FunctionCode {
    fn from(code: u8) -> Self {
        match code {
            0x01 => FunctionCode::ReadCoils,
            0x02 => FunctionCode::ReadDiscreteInputs,
            0x03 => FunctionCode::ReadHoldingRegisters,
            0x04 => FunctionCode::ReadInputRegisters,
            0x05 => FunctionCode::WriteSingleCoil,
            0x06 => FunctionCode::WriteSingleRegister,
            0x07 => FunctionCode::ReadExceptionStatus,
            0x08 => FunctionCode::Diagnostics,
            0x0F => FunctionCode::WriteMultipleCoils,
            0x10 => FunctionCode::WriteMultipleRegisters,
            0x11 => FunctionCode::ReportSlaveId,
            0x2B => FunctionCode::ReadDeviceIdentification,
            other => FunctionCode::Other(other),
        }
    }
}

impl fmt::Display for FunctionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionCode::Other(c) => write!(f, "Other(0x{c:02X})"),
            known => write!(f, "{known:?}(0x{:02X})", known.code()),
        }
    }
}

/// Modbus exception codes carried in exception responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionCode {
    /// 0x01 — the function code is not supported.
    IllegalFunction,
    /// 0x02 — the data address is not valid for the device.
    IllegalDataAddress,
    /// 0x03 — a value in the request is not allowed.
    IllegalDataValue,
    /// 0x04 — unrecoverable device failure.
    SlaveDeviceFailure,
    /// 0x05 — request accepted, long-running processing.
    Acknowledge,
    /// 0x06 — device busy.
    SlaveDeviceBusy,
    /// Any other exception code.
    Other(u8),
}

impl ExceptionCode {
    /// The raw wire value.
    pub fn code(self) -> u8 {
        match self {
            ExceptionCode::IllegalFunction => 0x01,
            ExceptionCode::IllegalDataAddress => 0x02,
            ExceptionCode::IllegalDataValue => 0x03,
            ExceptionCode::SlaveDeviceFailure => 0x04,
            ExceptionCode::Acknowledge => 0x05,
            ExceptionCode::SlaveDeviceBusy => 0x06,
            ExceptionCode::Other(c) => c,
        }
    }
}

impl From<u8> for ExceptionCode {
    fn from(code: u8) -> Self {
        match code {
            0x01 => ExceptionCode::IllegalFunction,
            0x02 => ExceptionCode::IllegalDataAddress,
            0x03 => ExceptionCode::IllegalDataValue,
            0x04 => ExceptionCode::SlaveDeviceFailure,
            0x05 => ExceptionCode::Acknowledge,
            0x06 => ExceptionCode::SlaveDeviceBusy,
            other => ExceptionCode::Other(other),
        }
    }
}

impl fmt::Display for ExceptionCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}(0x{:02X})", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_standard_codes() {
        for raw in [
            0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x0F, 0x10, 0x11, 0x2B,
        ] {
            let fc = FunctionCode::from(raw);
            assert_eq!(fc.code(), raw);
            assert!(fc.is_standard());
        }
    }

    #[test]
    fn unknown_codes_round_trip_through_other() {
        for raw in [0x00u8, 0x09, 0x63, 0xFF] {
            let fc = FunctionCode::from(raw);
            assert_eq!(fc, FunctionCode::Other(raw));
            assert_eq!(fc.code(), raw);
            assert!(!fc.is_standard());
        }
    }

    #[test]
    fn exception_bit_detection() {
        assert!(FunctionCode::Other(0x83).is_exception_response());
        assert!(!FunctionCode::ReadHoldingRegisters.is_exception_response());
    }

    #[test]
    fn exception_codes_round_trip() {
        for raw in 0x01u8..=0x06 {
            assert_eq!(ExceptionCode::from(raw).code(), raw);
        }
        assert_eq!(ExceptionCode::from(0x0B), ExceptionCode::Other(0x0B));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            FunctionCode::ReadHoldingRegisters.to_string(),
            "ReadHoldingRegisters(0x03)"
        );
        assert_eq!(FunctionCode::Other(0x63).to_string(), "Other(0x63)");
        assert!(ExceptionCode::IllegalFunction.to_string().contains("0x01"));
    }
}
