//! A from-scratch Modbus (RTU flavour) protocol substrate.
//!
//! The gas-pipeline SCADA system reproduced in this workspace speaks the
//! Modbus application-layer protocol (paper §VII). This crate implements the
//! pieces the simulator and feature extractor need:
//!
//! * [`crc`] — the CRC-16/Modbus checksum,
//! * [`FunctionCode`] / [`ExceptionCode`] — application function codes,
//! * [`Frame`] — RTU framing with encode/decode and CRC verification,
//! * [`RegisterMap`] — a holding-register store for the slave device,
//! * [`pipeline`] — the gas-pipeline payload codec mapping PID parameters,
//!   mode, pump/solenoid state and pressure onto registers.
//!
//! # Examples
//!
//! ```
//! use icsad_modbus::{Frame, FunctionCode};
//!
//! let frame = Frame::new(4, FunctionCode::ReadHoldingRegisters, vec![0, 0, 0, 11]);
//! let wire = frame.encode();
//! let decoded = Frame::decode(&wire)?;
//! assert_eq!(decoded, frame);
//! # Ok::<(), icsad_modbus::FrameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
mod frame;
mod function;
pub mod pipeline;
mod registers;

pub use frame::{Frame, FrameError, FrameView, MAX_ADU_LEN};
pub use function::{ExceptionCode, FunctionCode};
pub use registers::RegisterMap;
