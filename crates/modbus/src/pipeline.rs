//! Gas-pipeline payload codec: maps the PID controller settings, operating
//! mode, actuator states and the pressure measurement onto Modbus holding
//! registers, and builds the command/response frames exchanged between the
//! SCADA master and the pipeline PLC.
//!
//! The register layout mirrors the feature list of the Morris et al. dataset
//! (paper Table I): every feature the detectors consume is observable on the
//! wire.
//!
//! | register | content | encoding |
//! |---|---|---|
//! | 0 | setpoint | fixed point ×100 |
//! | 1 | PID gain | fixed point ×100 |
//! | 2 | PID reset rate | fixed point ×100 |
//! | 3 | PID deadband | fixed point ×100 |
//! | 4 | PID cycle time | fixed point ×100 |
//! | 5 | PID rate | fixed point ×100 |
//! | 6 | system mode | 0 = off, 1 = manual, 2 = auto |
//! | 7 | control scheme | 0 = pump, 1 = solenoid |
//! | 8 | pump | 0 = off, 1 = on |
//! | 9 | solenoid | 0 = closed, 1 = open |
//! | 10 | pressure | fixed point ×100 |

use std::error::Error;
use std::fmt;

use crate::frame::Frame;
use crate::function::FunctionCode;

/// Number of holding registers in the pipeline register bank.
pub const REGISTER_COUNT: u16 = 11;
/// Register address of the pressure measurement.
pub const PRESSURE_REGISTER: u16 = 10;
/// Fixed-point scaling factor for continuous values.
pub const SCALE: f64 = 100.0;

/// Operating mode of the pipeline controller (dataset feature `system mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SystemMode {
    /// System switched off.
    Off,
    /// Manual actuator control (pump/solenoid driven by the operator).
    Manual,
    /// Automatic PID control (the usual mode).
    #[default]
    Auto,
}

impl SystemMode {
    /// Dataset encoding: off = 0, manual = 1, automatic = 2.
    pub fn code(self) -> u16 {
        match self {
            SystemMode::Off => 0,
            SystemMode::Manual => 1,
            SystemMode::Auto => 2,
        }
    }

    /// Decodes the dataset encoding; unknown values map to `None`.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            0 => Some(SystemMode::Off),
            1 => Some(SystemMode::Manual),
            2 => Some(SystemMode::Auto),
            _ => None,
        }
    }
}

/// Which actuator the PID loop drives (dataset feature `control scheme`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ControlScheme {
    /// The compressor pump maintains pressure.
    #[default]
    Pump,
    /// The solenoid relief valve maintains pressure.
    Solenoid,
}

impl ControlScheme {
    /// Dataset encoding: pump = 0, solenoid = 1.
    pub fn code(self) -> u16 {
        match self {
            ControlScheme::Pump => 0,
            ControlScheme::Solenoid => 1,
        }
    }

    /// Decodes the dataset encoding; unknown values map to `None`.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            0 => Some(ControlScheme::Pump),
            1 => Some(ControlScheme::Solenoid),
            _ => None,
        }
    }
}

/// The six PID controller parameters carried in every command package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidSettings {
    /// Pressure set point for automatic mode (PSI).
    pub setpoint: f64,
    /// Proportional gain.
    pub gain: f64,
    /// Integral reset rate.
    pub reset_rate: f64,
    /// Dead band around the set point.
    pub deadband: f64,
    /// Controller cycle time.
    pub cycle_time: f64,
    /// Derivative rate.
    pub rate: f64,
}

impl Default for PidSettings {
    fn default() -> Self {
        // Plausible operating point for the laboratory gas pipeline.
        PidSettings {
            setpoint: 10.0,
            gain: 4.0,
            reset_rate: 2.0,
            deadband: 1.0,
            cycle_time: 1.0,
            rate: 0.2,
        }
    }
}

/// Full controller state written by a command package and echoed (plus
/// pressure) by a response package.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineState {
    /// PID parameters.
    pub pid: PidSettings,
    /// Operating mode.
    pub mode: SystemMode,
    /// Actuator selection.
    pub scheme: ControlScheme,
    /// Pump state (meaningful in manual mode).
    pub pump_on: bool,
    /// Solenoid state (meaningful in manual mode).
    pub solenoid_open: bool,
    /// Latest pressure measurement (PSI).
    pub pressure: f64,
}

/// Errors produced when decoding pipeline payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PayloadError {
    /// The payload length does not match the expected layout.
    BadLength {
        /// Expected payload length in bytes.
        expected: usize,
        /// Observed payload length in bytes.
        got: usize,
    },
    /// A register held a value outside its enum domain.
    BadValue {
        /// Register address of the offending value.
        register: u16,
        /// Observed raw value.
        value: u16,
    },
    /// The frame carried an unexpected function code.
    UnexpectedFunction {
        /// Observed function code.
        got: FunctionCode,
    },
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::BadLength { expected, got } => {
                write!(f, "bad payload length: expected {expected}, got {got}")
            }
            PayloadError::BadValue { register, value } => {
                write!(f, "register {register} holds out-of-domain value {value}")
            }
            PayloadError::UnexpectedFunction { got } => {
                write!(f, "unexpected function code {got}")
            }
        }
    }
}

impl Error for PayloadError {}

fn to_fixed(v: f64) -> u16 {
    (v * SCALE).round().clamp(0.0, f64::from(u16::MAX)) as u16
}

fn from_fixed(raw: u16) -> f64 {
    f64::from(raw) / SCALE
}

/// Encodes the state into the 11-register bank image.
pub fn state_to_registers(state: &PipelineState) -> [u16; REGISTER_COUNT as usize] {
    [
        to_fixed(state.pid.setpoint),
        to_fixed(state.pid.gain),
        to_fixed(state.pid.reset_rate),
        to_fixed(state.pid.deadband),
        to_fixed(state.pid.cycle_time),
        to_fixed(state.pid.rate),
        state.mode.code(),
        state.scheme.code(),
        u16::from(state.pump_on),
        u16::from(state.solenoid_open),
        to_fixed(state.pressure),
    ]
}

/// Decodes an 11-register bank image back into a state.
///
/// # Errors
///
/// Returns [`PayloadError::BadValue`] for out-of-domain mode/scheme/actuator
/// registers.
pub fn state_from_registers(regs: &[u16]) -> Result<PipelineState, PayloadError> {
    if regs.len() != REGISTER_COUNT as usize {
        return Err(PayloadError::BadLength {
            expected: REGISTER_COUNT as usize,
            got: regs.len(),
        });
    }
    let mode = SystemMode::from_code(regs[6]).ok_or(PayloadError::BadValue {
        register: 6,
        value: regs[6],
    })?;
    let scheme = ControlScheme::from_code(regs[7]).ok_or(PayloadError::BadValue {
        register: 7,
        value: regs[7],
    })?;
    let bool_reg = |addr: usize| -> Result<bool, PayloadError> {
        match regs[addr] {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PayloadError::BadValue {
                register: addr as u16,
                value: v,
            }),
        }
    };
    Ok(PipelineState {
        pid: PidSettings {
            setpoint: from_fixed(regs[0]),
            gain: from_fixed(regs[1]),
            reset_rate: from_fixed(regs[2]),
            deadband: from_fixed(regs[3]),
            cycle_time: from_fixed(regs[4]),
            rate: from_fixed(regs[5]),
        },
        mode,
        scheme,
        pump_on: bool_reg(8)?,
        solenoid_open: bool_reg(9)?,
        pressure: from_fixed(regs[10]),
    })
}

/// Builds the master's *write command* frame: a `WriteMultipleRegisters`
/// request carrying the full controller state (registers 0..=9; pressure is
/// read-only and excluded).
pub fn encode_write_command(slave: u8, state: &PipelineState) -> Frame {
    let regs = state_to_registers(state);
    let count = (REGISTER_COUNT - 1) as usize; // exclude pressure
    let mut payload = Vec::with_capacity(5 + 2 * count);
    payload.extend_from_slice(&0u16.to_be_bytes()); // start address
    payload.extend_from_slice(&(count as u16).to_be_bytes());
    payload.push((2 * count) as u8);
    for reg in &regs[..count] {
        payload.extend_from_slice(&reg.to_be_bytes());
    }
    Frame::new(slave, FunctionCode::WriteMultipleRegisters, payload)
}

/// Builds the master's *read command* frame polling all registers.
pub fn encode_read_command(slave: u8) -> Frame {
    let mut payload = Vec::with_capacity(4);
    payload.extend_from_slice(&0u16.to_be_bytes());
    payload.extend_from_slice(&REGISTER_COUNT.to_be_bytes());
    Frame::new(slave, FunctionCode::ReadHoldingRegisters, payload)
}

/// Builds the slave's *read response* frame carrying the full state image.
pub fn encode_read_response(slave: u8, state: &PipelineState) -> Frame {
    let regs = state_to_registers(state);
    let mut payload = Vec::with_capacity(1 + 2 * regs.len());
    payload.push((2 * regs.len()) as u8);
    for reg in &regs {
        payload.extend_from_slice(&reg.to_be_bytes());
    }
    Frame::new(slave, FunctionCode::ReadHoldingRegisters, payload)
}

/// Builds the slave's *write acknowledgement* frame (echoes address/count).
pub fn encode_write_response(slave: u8) -> Frame {
    let mut payload = Vec::with_capacity(4);
    payload.extend_from_slice(&0u16.to_be_bytes());
    payload.extend_from_slice(&(REGISTER_COUNT - 1).to_be_bytes());
    Frame::new(slave, FunctionCode::WriteMultipleRegisters, payload)
}

/// Decodes the state carried by a *write command* frame.
///
/// # Errors
///
/// Returns [`PayloadError`] if the frame is not a well-formed pipeline write
/// command. The decoded state has `pressure == 0.0` (commands do not carry a
/// measurement).
pub fn decode_write_command(frame: &Frame) -> Result<PipelineState, PayloadError> {
    decode_write_command_parts(frame.function(), frame.payload())
}

/// Decodes a *write command* from its function code and payload bytes — the
/// borrowed-frame ([`crate::FrameView`]) twin of [`decode_write_command`],
/// allocation-free end to end.
///
/// # Errors
///
/// See [`decode_write_command`].
pub fn decode_write_command_parts(
    function: FunctionCode,
    payload: &[u8],
) -> Result<PipelineState, PayloadError> {
    if function != FunctionCode::WriteMultipleRegisters {
        return Err(PayloadError::UnexpectedFunction { got: function });
    }
    let count = (REGISTER_COUNT - 1) as usize;
    let expected = 5 + 2 * count;
    if payload.len() != expected {
        return Err(PayloadError::BadLength {
            expected,
            got: payload.len(),
        });
    }
    let mut regs = [0u16; REGISTER_COUNT as usize];
    for (i, chunk) in payload[5..].chunks_exact(2).enumerate() {
        regs[i] = u16::from_be_bytes([chunk[0], chunk[1]]);
    }
    state_from_registers(&regs)
}

/// Decodes the state carried by a *read response* frame.
///
/// # Errors
///
/// Returns [`PayloadError`] if the frame is not a well-formed pipeline read
/// response.
pub fn decode_read_response(frame: &Frame) -> Result<PipelineState, PayloadError> {
    decode_read_response_parts(frame.function(), frame.payload())
}

/// Decodes a *read response* from its function code and payload bytes — the
/// borrowed-frame ([`crate::FrameView`]) twin of [`decode_read_response`],
/// allocation-free end to end.
///
/// # Errors
///
/// See [`decode_read_response`].
pub fn decode_read_response_parts(
    function: FunctionCode,
    payload: &[u8],
) -> Result<PipelineState, PayloadError> {
    if function != FunctionCode::ReadHoldingRegisters {
        return Err(PayloadError::UnexpectedFunction { got: function });
    }
    let expected = 1 + 2 * REGISTER_COUNT as usize;
    if payload.len() != expected {
        return Err(PayloadError::BadLength {
            expected,
            got: payload.len(),
        });
    }
    let mut regs = [0u16; REGISTER_COUNT as usize];
    for (i, chunk) in payload[1..].chunks_exact(2).enumerate() {
        regs[i] = u16::from_be_bytes([chunk[0], chunk[1]]);
    }
    state_from_registers(&regs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> PipelineState {
        PipelineState {
            pid: PidSettings {
                setpoint: 10.0,
                gain: 4.25,
                reset_rate: 2.5,
                deadband: 1.0,
                cycle_time: 1.5,
                rate: 0.2,
            },
            mode: SystemMode::Auto,
            scheme: ControlScheme::Pump,
            pump_on: true,
            solenoid_open: false,
            pressure: 9.87,
        }
    }

    #[test]
    fn register_round_trip_preserves_state() {
        let state = sample_state();
        let regs = state_to_registers(&state);
        let back = state_from_registers(&regs).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn fixed_point_quantizes_to_hundredths() {
        let mut state = sample_state();
        state.pressure = 3.17159;
        let back = state_from_registers(&state_to_registers(&state)).unwrap();
        assert!((back.pressure - 3.17).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_clamps_out_of_range() {
        let mut state = sample_state();
        state.pressure = -5.0;
        let regs = state_to_registers(&state);
        assert_eq!(regs[PRESSURE_REGISTER as usize], 0);
        state.pressure = 1e9;
        let regs = state_to_registers(&state);
        assert_eq!(regs[PRESSURE_REGISTER as usize], u16::MAX);
    }

    #[test]
    fn mode_and_scheme_codes_match_dataset() {
        assert_eq!(SystemMode::Off.code(), 0);
        assert_eq!(SystemMode::Manual.code(), 1);
        assert_eq!(SystemMode::Auto.code(), 2);
        assert_eq!(ControlScheme::Pump.code(), 0);
        assert_eq!(ControlScheme::Solenoid.code(), 1);
        assert_eq!(SystemMode::from_code(3), None);
        assert_eq!(ControlScheme::from_code(2), None);
    }

    #[test]
    fn write_command_round_trip() {
        let state = sample_state();
        let frame = encode_write_command(4, &state);
        assert_eq!(frame.function(), FunctionCode::WriteMultipleRegisters);
        let decoded = decode_write_command(&frame).unwrap();
        // Commands do not carry pressure.
        let mut expected = state;
        expected.pressure = 0.0;
        assert_eq!(decoded, expected);
    }

    #[test]
    fn read_response_round_trip() {
        let state = sample_state();
        let frame = encode_read_response(4, &state);
        let decoded = decode_read_response(&frame).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn read_command_shape() {
        let frame = encode_read_command(4);
        assert_eq!(frame.function(), FunctionCode::ReadHoldingRegisters);
        assert_eq!(frame.payload().len(), 4);
        assert_eq!(frame.address(), 4);
    }

    #[test]
    fn write_response_shape() {
        let frame = encode_write_response(4);
        assert_eq!(frame.function(), FunctionCode::WriteMultipleRegisters);
        assert_eq!(frame.payload().len(), 4);
    }

    #[test]
    fn decode_rejects_wrong_function() {
        let state = sample_state();
        let frame = encode_read_response(4, &state);
        assert!(matches!(
            decode_write_command(&frame),
            Err(PayloadError::UnexpectedFunction { .. })
        ));
        let frame = encode_write_command(4, &state);
        assert!(matches!(
            decode_read_response(&frame),
            Err(PayloadError::UnexpectedFunction { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_length() {
        let frame = Frame::new(4, FunctionCode::ReadHoldingRegisters, vec![1, 2, 3]);
        assert!(matches!(
            decode_read_response(&frame),
            Err(PayloadError::BadLength { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_domain_mode() {
        let mut regs = state_to_registers(&sample_state());
        regs[6] = 9;
        assert!(matches!(
            state_from_registers(&regs),
            Err(PayloadError::BadValue {
                register: 6,
                value: 9
            })
        ));
    }

    #[test]
    fn decode_rejects_out_of_domain_actuator() {
        let mut regs = state_to_registers(&sample_state());
        regs[8] = 7;
        assert!(state_from_registers(&regs).is_err());
    }

    #[test]
    fn full_wire_round_trip_through_frames() {
        // command frame -> wire bytes -> decode -> payload decode
        let state = sample_state();
        let wire = encode_write_command(4, &state).encode();
        let frame = Frame::decode(&wire).unwrap();
        let decoded = decode_write_command(&frame).unwrap();
        assert_eq!(decoded.pid, state.pid);
    }

    #[test]
    fn error_display_messages() {
        let e = PayloadError::BadLength {
            expected: 23,
            got: 4,
        };
        assert!(e.to_string().contains("23"));
        let e = PayloadError::BadValue {
            register: 6,
            value: 9,
        };
        assert!(e.to_string().contains("register 6"));
    }
}
