//! Property-based tests for the Modbus substrate.

use icsad_modbus::crc::{append_crc, crc16, verify_crc};
use icsad_modbus::{Frame, FunctionCode};
use proptest::prelude::*;

proptest! {
    /// Any frame round-trips through encode/decode.
    #[test]
    fn frame_round_trip(
        address in any::<u8>(),
        function in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let frame = Frame::new(address, FunctionCode::from(function), payload);
        let decoded = Frame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// The CRC catches every single-bit corruption.
    #[test]
    fn crc_detects_single_bit_flips(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        bit in 0usize..512,
    ) {
        let buf = append_crc(payload);
        let bit = bit % (buf.len() * 8);
        let mut corrupted = buf.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(verify_crc(&corrupted).is_none(), "flip at bit {bit} undetected");
    }

    /// CRC is a pure function of its input.
    #[test]
    fn crc_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// Lenient decoding recovers contents regardless of CRC validity.
    #[test]
    fn lenient_decode_recovers_contents(
        address in any::<u8>(),
        function in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        corrupt in any::<bool>(),
    ) {
        let frame = Frame::new(address, FunctionCode::from(function), payload);
        let wire = if corrupt {
            frame.encode_with_bad_crc()
        } else {
            frame.encode()
        };
        let (decoded, crc_ok) = Frame::decode_lenient(&wire).unwrap();
        prop_assert_eq!(crc_ok, !corrupt);
        prop_assert_eq!(decoded, frame);
    }

    /// Function codes round-trip through their wire byte.
    #[test]
    fn function_code_round_trip(code in any::<u8>()) {
        prop_assert_eq!(FunctionCode::from(code).code(), code);
    }
}
