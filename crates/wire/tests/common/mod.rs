//! Shared fixture traffic for the wire integration tests: deterministic
//! clean Modbus traffic from the simulator, quantized to pcap timestamp
//! resolution so every path — capture replay, direct ingest, per-record
//! reference — sees bit-identical times.

#![allow(dead_code)] // each test binary uses a subset

use icsad_modbus::crc::verify_crc;
use icsad_simulator::{Packet, TrafficConfig, TrafficGenerator};
use icsad_wire::fixture::CaptureBuilder;

/// The committed capture fixture, regenerable via
/// `ICSAD_WRITE_FIXTURE=1 cargo test -p icsad-wire --test equivalence`.
pub const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/modbus_tcp.pcap"
);

/// Rounds a timestamp through the classic-pcap seconds/microseconds split
/// with **exactly** the arithmetic [`CaptureBuilder`] uses to encode and
/// `PcapReader` uses to decode, so a quantized time survives the capture
/// round trip bit-identically.
pub fn pcap_time(time: f64) -> f64 {
    let secs = time as u32;
    let micros = ((time - f64::from(secs)) * 1e6).round() as u32;
    f64::from(secs) + f64::from(micros) / 1e6
}

/// Three clean (attack-free) polling sessions to units 3, 7, and 11,
/// merged chronologically — the traffic one master connection to a
/// multi-drop gateway would show — with pcap-quantized timestamps.
pub fn fixture_traffic() -> Vec<Packet> {
    let mut capture: Vec<Packet> = Vec::new();
    for (i, slave) in [3u8, 7, 11].into_iter().enumerate() {
        let mut generator = TrafficGenerator::new(TrafficConfig {
            seed: 400 + i as u64,
            slave_address: slave,
            attack_probability: 0.0,
            // MBAP carries no CRC, so line-noise corruption cannot
            // round-trip through a TCP capture; keep the fixture free of it
            // (a serial-side phenomenon) so re-encapsulation is lossless.
            bad_crc_rate: 0.0,
            ..TrafficConfig::default()
        });
        capture.extend(generator.generate(200));
    }
    capture.sort_by(|a, b| a.time.total_cmp(&b.time));
    for p in &mut capture {
        p.time = pcap_time(p.time);
        assert!(p.label.is_none(), "clean traffic must be unlabeled");
        assert!(
            verify_crc(&p.wire).is_some(),
            "fixture traffic must carry valid CRCs (MBAP re-encapsulation \
             recomputes them, so a bad CRC could not round-trip)"
        );
    }
    capture
}

/// The fixture traffic as a single-connection Modbus-TCP capture image.
pub fn fixture_image(packets: &[Packet]) -> Vec<u8> {
    let mut builder = CaptureBuilder::new();
    for p in packets {
        builder.modbus(p.time, &p.wire, p.is_command);
    }
    builder.finish()
}
