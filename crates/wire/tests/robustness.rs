//! Adversarial-input robustness: garbled MBAP streams, corrupted and
//! truncated captures, and malformed frames must never panic anywhere in
//! the wire layer, must account for every byte they discard, and must
//! quarantine at the engine exactly what is malformed — no more, no less.

mod common;

use std::sync::{Arc, OnceLock};

use icsad_core::combined::CombinedDetector;
use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::timeseries::TimeSeriesTrainingConfig;
use icsad_dataset::{DatasetConfig, GasPipelineDataset};
use icsad_engine::{Engine, EngineConfig, FrameBytes, IngestMode, RawFrame};
use icsad_wire::{MbapDecoder, PcapReader, WireReplay};
use proptest::prelude::*;

/// Builds one well-formed MBAP frame with both transaction-id bytes
/// nonzero (see `garbage_runs_are_skipped_exactly` for why that matters).
fn mbap(txn: u16, unit: u8, pdu: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&txn.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes());
    out.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
    out.push(unit);
    out.extend_from_slice(pdu);
    out
}

proptest! {
    /// Arbitrary byte soup through the MBAP decoder, at arbitrary segment
    /// sizes: no panic, and every byte is accounted for — consumed by a
    /// frame, skipped during resync, or still pending. A decoded frame
    /// consumed `6 + length` wire bytes while its RTU ADU is `length + 2`
    /// bytes, so wire consumption per frame is `adu.len() + 4`.
    #[test]
    fn mbap_accounts_every_byte_of_arbitrary_input(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut dec = MbapDecoder::new();
        let mut consumed = 0u64;
        for segment in bytes.chunks(chunk) {
            dec.push(segment);
            while let Some(frame) = dec.next_frame() {
                // Wire bytes for this frame: 6 + length = adu + 4 (the ADU
                // is unit + PDU + 2-byte CRC; the wire was 7-byte header +
                // PDU).
                consumed += frame.adu.len() as u64 + 4;
            }
        }
        let stats = dec.stats();
        prop_assert_eq!(
            bytes.len() as u64,
            consumed + stats.skipped_bytes + dec.pending() as u64,
            "bytes unaccounted for"
        );
        prop_assert_eq!(consumed > 0, stats.frames > 0);
    }

    /// Garbage runs of `0xFF` between valid frames are skipped **exactly**:
    /// frame count, skipped-byte count, and resync count all match the
    /// construction. `0xFF` garbage plus nonzero transaction-id bytes
    /// guarantee no scan window straddling garbage and frame parses as a
    /// valid header (the protocol-id field is nonzero at every offset).
    #[test]
    fn garbage_runs_are_skipped_exactly(
        runs in proptest::collection::vec(
            (0usize..24, 1u8..=255, 1u8..=255, proptest::collection::vec(any::<u8>(), 1..80)),
            1..12,
        ),
        chunk in 1usize..48,
    ) {
        let mut stream = Vec::new();
        let mut expect_skipped = 0u64;
        let mut expect_resyncs = 0u64;
        for (garbage_len, txn_hi, txn_lo, pdu) in &runs {
            stream.extend(std::iter::repeat_n(0xFFu8, *garbage_len));
            if *garbage_len > 0 {
                expect_skipped += *garbage_len as u64;
                expect_resyncs += 1;
            }
            let txn = u16::from_be_bytes([*txn_hi, *txn_lo]);
            stream.extend_from_slice(&mbap(txn, 4, pdu));
        }

        let mut dec = MbapDecoder::new();
        let mut frames = 0u64;
        for segment in stream.chunks(chunk) {
            dec.push(segment);
            while dec.next_frame().is_some() {
                frames += 1;
            }
        }
        let stats = dec.stats();
        prop_assert_eq!(frames, runs.len() as u64, "every valid frame decodes");
        prop_assert_eq!(stats.frames, frames);
        prop_assert_eq!(stats.skipped_bytes, expect_skipped, "exact skip count");
        prop_assert_eq!(stats.resyncs, expect_resyncs, "one resync per garbage run");
        prop_assert_eq!(dec.pending(), 0);
    }

    /// Arbitrary bytes through the pcap container parser: errors, never
    /// panics, and always terminates.
    #[test]
    fn pcap_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        if let Ok(mut reader) = PcapReader::new(&bytes) {
            while let Ok(Some(_)) = reader.next() {}
        }
    }

    /// A valid capture truncated at any byte, or with any single byte
    /// corrupted, replays without panicking — structural damage surfaces
    /// as a `PcapError` or as decoder resync counters, not a crash.
    #[test]
    fn corrupted_captures_never_panic(
        cut in 0usize..2000,
        flip_at in 0usize..2000,
        flip_to in any::<u8>(),
    ) {
        static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
        let image = IMAGE.get_or_init(|| {
            let packets = common::fixture_traffic();
            common::fixture_image(&packets[..40.min(packets.len())])
        });

        let mut truncated = image.clone();
        truncated.truncate(cut.min(truncated.len()));
        let _ = WireReplay::new().replay(&truncated, |_| {});

        let mut flipped = image.clone();
        let at = flip_at % flipped.len();
        flipped[at] = flip_to;
        let mut emitted = Vec::new();
        if let Ok(stats) = WireReplay::new().replay(&flipped, |f| emitted.push(f)) {
            prop_assert_eq!(stats.frames, emitted.len() as u64);
        }
        // Whatever survives corruption is still structurally sound.
        for f in &emitted {
            prop_assert!(f.is_well_formed());
        }
    }
}

fn tiny_detector() -> &'static Arc<CombinedDetector> {
    static DETECTOR: OnceLock<Arc<CombinedDetector>> = OnceLock::new();
    DETECTOR.get_or_init(|| {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 1_500,
            seed: 91,
            attack_probability: 0.0,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.7, 0.2);
        Arc::new(
            train_framework(
                &split,
                &ExperimentConfig {
                    timeseries: TimeSeriesTrainingConfig {
                        hidden_dims: vec![8],
                        epochs: 1,
                        seed: 91,
                        ..TimeSeriesTrainingConfig::default()
                    },
                    ..ExperimentConfig::default()
                },
            )
            .unwrap()
            .detector,
        )
    })
}

/// Batched ingest quarantines exactly the malformed frames: MBAP-decoded
/// frames are always well-formed (the decoder cannot emit a frame shorter
/// than `MIN_FRAME_LEN` or without a timestamp), while hand-built runts
/// and NaN-timestamped frames are counted one for one.
#[test]
fn engine_quarantines_exactly_the_malformed_frames() {
    let packets = common::fixture_traffic();
    let good: Vec<RawFrame> = packets.iter().take(120).map(RawFrame::from).collect();
    assert!(good.iter().all(RawFrame::is_well_formed));

    for (bad_count, mode) in [
        (0usize, IngestMode::Threads),
        (7, IngestMode::Threads),
        (7, IngestMode::Async { workers: 2 }),
        (23, IngestMode::Async { workers: 2 }),
    ] {
        let mut mixed: Vec<RawFrame> = Vec::new();
        for (i, frame) in good.iter().enumerate() {
            mixed.push(frame.clone());
            if i < bad_count {
                // Alternate the two quarantine triggers: runt frames and
                // non-finite timestamps.
                mixed.push(if i % 2 == 0 {
                    RawFrame {
                        time: frame.time,
                        wire: FrameBytes::from(&[0x04u8, 0x03][..]),
                        is_command: true,
                        label: None,
                        link: 0,
                    }
                } else {
                    RawFrame {
                        time: f64::NAN,
                        wire: frame.wire.clone(),
                        is_command: frame.is_command,
                        label: None,
                        link: 0,
                    }
                });
            }
        }
        let mut engine = Engine::start(
            Arc::clone(tiny_detector()),
            EngineConfig {
                num_shards: 2,
                batch_size: 8,
                channel_capacity: 64,
                ingest: mode,
                ..EngineConfig::default()
            },
        );
        engine.ingest_batch(mixed.iter().cloned());
        let report = engine.finish();
        assert_eq!(
            report.quarantined, bad_count as u64,
            "exact quarantine count"
        );
        assert_eq!(
            report.frames(),
            good.len() as u64,
            "good frames all processed"
        );
    }
}
