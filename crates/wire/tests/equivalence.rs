//! Wire-path equivalence: replaying the committed Modbus-TCP capture
//! through the wire layer, ingesting the same traffic directly as
//! [`RawFrame`]s, and classifying each stream one record at a time must
//! all produce **bit-identical** decisions.
//!
//! The chain under test: pcap container → TCP demux → MBAP framing → RTU
//! re-encapsulation → engine routing. Equivalence holds because (a) a
//! valid-CRC RTU ADU round-trips through MBAP byte-for-byte (the decoder
//! recomputes the same CRC the frame carried), (b) the fixture is a
//! single TCP connection, so replay assigns link 0 exactly like direct
//! ingest, and (c) timestamps are pcap-quantized on both sides
//! ([`common::pcap_time`]).

mod common;

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use icsad_core::combined::CombinedDetector;
use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::metrics::ClassificationReport;
use icsad_core::timeseries::TimeSeriesTrainingConfig;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};
use icsad_dataset::{DatasetConfig, GasPipelineDataset};
use icsad_engine::{Engine, EngineConfig, EngineReport, FrameBytes, IngestMode, RawFrame};
use icsad_simulator::Packet;
use icsad_wire::WireReplay;

fn detector() -> &'static Arc<CombinedDetector> {
    static DETECTOR: OnceLock<Arc<CombinedDetector>> = OnceLock::new();
    DETECTOR.get_or_init(|| {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 3_000,
            seed: 77,
            attack_probability: 0.0,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.7, 0.2);
        Arc::new(
            train_framework(
                &split,
                &ExperimentConfig {
                    timeseries: TimeSeriesTrainingConfig {
                        hidden_dims: vec![8],
                        epochs: 1,
                        seed: 77,
                        ..TimeSeriesTrainingConfig::default()
                    },
                    ..ExperimentConfig::default()
                },
            )
            .unwrap()
            .detector,
        )
    })
}

fn run_engine(frames: &[RawFrame], ingest: IngestMode) -> EngineReport {
    let mut engine = Engine::start(
        Arc::clone(detector()),
        EngineConfig {
            num_shards: 2,
            batch_size: 8,
            channel_capacity: 64,
            ingest,
            ..EngineConfig::default()
        },
    );
    engine.ingest_batch(frames.iter().cloned());
    engine.finish()
}

/// Per-record reference: partition by unit id (the router's stream key on
/// a single link), extract each stream, classify one record at a time.
fn per_record_reference(packets: &[Packet]) -> (ClassificationReport, u64) {
    let mut by_unit: HashMap<u8, Vec<Packet>> = HashMap::new();
    for p in packets {
        by_unit
            .entry(p.wire.first().copied().unwrap_or(0))
            .or_default()
            .push(p.clone());
    }
    let det = detector();
    let mut total = ClassificationReport::default();
    let mut alarms = 0u64;
    for stream in by_unit.values() {
        let records = extract_records(stream, DEFAULT_CRC_WINDOW);
        let mut state = det.begin();
        for r in &records {
            let anomalous = det.classify(&mut state, r).is_anomalous();
            if anomalous {
                alarms += 1;
            }
            total.record(r.label, anomalous);
        }
    }
    (total, alarms)
}

/// The committed fixture must match its generator byte for byte, so the
/// bytes under test stay reproducible from source. Regenerate with
/// `ICSAD_WRITE_FIXTURE=1`.
#[test]
fn committed_fixture_matches_generator() {
    let image = common::fixture_image(&common::fixture_traffic());
    if std::env::var_os("ICSAD_WRITE_FIXTURE").is_some() {
        std::fs::write(common::FIXTURE_PATH, &image).expect("write fixture");
    }
    let committed = std::fs::read(common::FIXTURE_PATH).expect(
        "committed fixture missing; regenerate with ICSAD_WRITE_FIXTURE=1 \
         cargo test -p icsad-wire --test equivalence",
    );
    assert_eq!(
        committed, image,
        "committed fixture diverged from its generator"
    );
}

/// Replay of the committed capture yields frame-for-frame the same
/// [`RawFrame`]s as direct ingest of the original traffic: same RTU
/// bytes, same timestamps (bit-identical f64), same direction flags,
/// all on link 0, all inline.
#[test]
fn replayed_frames_equal_direct_frames() {
    let packets = common::fixture_traffic();
    let image = std::fs::read(common::FIXTURE_PATH).expect("committed fixture");

    let mut replayed = Vec::new();
    let mut replay = WireReplay::new();
    let stats = replay.replay(&image, |f| replayed.push(f)).unwrap();
    assert_eq!(stats.packets as usize, packets.len());
    assert_eq!(stats.frames as usize, packets.len());
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.ignored_packets, 0);
    assert_eq!(stats.skipped_bytes, 0);
    assert_eq!(stats.resyncs, 0);

    let direct: Vec<RawFrame> = packets
        .iter()
        .map(|p| RawFrame {
            time: p.time,
            wire: FrameBytes::from(&p.wire[..]),
            is_command: p.is_command,
            label: None,
            link: 0,
        })
        .collect();
    assert_eq!(replayed.len(), direct.len());
    for (i, (r, d)) in replayed.iter().zip(&direct).enumerate() {
        assert_eq!(r, d, "frame {i} diverged between replay and direct");
        assert!(r.wire.is_inline(), "frame {i} spilled to the heap");
        assert_eq!(
            r.time.to_bits(),
            d.time.to_bits(),
            "frame {i} timestamp not bit-identical"
        );
    }
}

/// The headline three-way property: wire replay ≡ direct ingest ≡
/// per-record reference, in both ingest modes.
#[test]
fn wire_replay_direct_ingest_and_per_record_agree() {
    let packets = common::fixture_traffic();
    let image = std::fs::read(common::FIXTURE_PATH).expect("committed fixture");

    let mut replayed = Vec::new();
    WireReplay::new()
        .replay(&image, |f| replayed.push(f))
        .unwrap();
    let direct: Vec<RawFrame> = packets.iter().map(RawFrame::from).collect();

    let (reference, ref_alarms) = per_record_reference(&packets);

    for (name, ingest) in [
        ("threads", IngestMode::Threads),
        ("async", IngestMode::Async { workers: 2 }),
    ] {
        let wire_report = run_engine(&replayed, ingest);
        let direct_report = run_engine(&direct, ingest);
        for (path, report) in [("wire", &wire_report), ("direct", &direct_report)] {
            assert_eq!(
                report.total, reference,
                "{name}/{path}: decisions diverged from per-record reference"
            );
            assert_eq!(report.alarms(), ref_alarms, "{name}/{path}: alarms");
            assert_eq!(
                report.frames(),
                packets.len() as u64,
                "{name}/{path}: frames"
            );
            assert_eq!(report.quarantined, 0, "{name}/{path}: quarantined");
        }
        assert_eq!(
            wire_report.total, direct_report.total,
            "{name}: wire vs direct report"
        );
    }
}
