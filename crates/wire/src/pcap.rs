//! Zero-copy pcap / pcapng capture parsing.
//!
//! The reader walks an in-memory capture image and yields each packet as
//! a [`CapturedPacket`] whose `data` **borrows** the capture buffer —
//! replaying a gigabyte capture copies packet bytes exactly zero times on
//! this layer. Two container formats are recognized:
//!
//! * **classic pcap** — 24-byte global header (all four magic variants:
//!   both endiannesses × microsecond/nanosecond timestamps), 16-byte
//!   per-record headers;
//! * **pcapng** — Section Header Block (which fixes the byte order),
//!   Interface Description Blocks (link type), Enhanced Packet Blocks
//!   (64-bit timestamps, microsecond resolution assumed); other block
//!   types are skipped, as the format intends.
//!
//! Malformed input is a value, not a panic: every structural violation
//! maps to a [`PcapError`], and the robustness proptests drive arbitrary
//! byte soup through here to pin that.

/// One captured packet, borrowed from the capture image.
#[derive(Debug, Clone, Copy)]
pub struct CapturedPacket<'a> {
    /// Capture timestamp in seconds (fractional part from the format's
    /// microsecond or nanosecond field).
    pub time: f64,
    /// Link-layer bytes, truncated to the captured length.
    pub data: &'a [u8],
}

/// Structural capture-parsing failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// The image is too short to hold the promised structure.
    Truncated,
    /// Neither a classic pcap magic nor a pcapng section header.
    BadMagic,
    /// A record or block length field is inconsistent (zero-sized block,
    /// length smaller than its own header, packet past the image end).
    BadLength,
    /// The capture's link type is not Ethernet (the only layout the
    /// replay layer decapsulates).
    UnsupportedLinkType(u32),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "capture truncated"),
            PcapError::BadMagic => write!(f, "not a pcap or pcapng capture"),
            PcapError::BadLength => write!(f, "inconsistent record length"),
            PcapError::UnsupportedLinkType(lt) => {
                write!(f, "unsupported link type {lt} (only Ethernet)")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// LINKTYPE_ETHERNET, the only link layer [`crate::WireReplay`] parses.
pub const LINKTYPE_ETHERNET: u32 = 1;

#[derive(Debug)]
enum Format {
    Classic {
        swapped: bool,
        /// Divisor turning the fractional timestamp field into seconds.
        ts_divisor: f64,
    },
    PcapNg {
        swapped: bool,
    },
}

/// Streaming packet reader over an in-memory capture image (see the
/// module docs).
#[derive(Debug)]
pub struct PcapReader<'a> {
    data: &'a [u8],
    offset: usize,
    format: Format,
    link_type: u32,
}

fn u16_at(data: &[u8], off: usize, swapped: bool) -> Result<u16, PcapError> {
    let bytes: [u8; 2] = data
        .get(off..off + 2)
        .ok_or(PcapError::Truncated)?
        .try_into()
        // PANIC: the slice is exactly 2 bytes by construction.
        .expect("2-byte slice");
    Ok(if swapped {
        u16::from_be_bytes(bytes)
    } else {
        u16::from_le_bytes(bytes)
    })
}

fn u32_at(data: &[u8], off: usize, swapped: bool) -> Result<u32, PcapError> {
    let bytes: [u8; 4] = data
        .get(off..off + 4)
        .ok_or(PcapError::Truncated)?
        .try_into()
        // PANIC: the slice is exactly 4 bytes by construction.
        .expect("4-byte slice");
    Ok(if swapped {
        u32::from_be_bytes(bytes)
    } else {
        u32::from_le_bytes(bytes)
    })
}

impl<'a> PcapReader<'a> {
    /// Opens a capture image, recognizing classic pcap and pcapng.
    ///
    /// # Errors
    ///
    /// [`PcapError::BadMagic`] if the image starts with neither format's
    /// magic, [`PcapError::Truncated`]/[`PcapError::BadLength`] on a
    /// malformed header, [`PcapError::UnsupportedLinkType`] for
    /// non-Ethernet captures.
    pub fn new(data: &'a [u8]) -> Result<Self, PcapError> {
        let magic = u32_at(data, 0, false)?;
        match magic {
            // Classic pcap: magic in native order, or byte-swapped, each
            // in the microsecond and nanosecond variants.
            0xA1B2_C3D4 | 0xA1B2_3C4D | 0xD4C3_B2A1 | 0x4D3C_B2A1 => {
                let swapped = matches!(magic, 0xD4C3_B2A1 | 0x4D3C_B2A1);
                let nanos = matches!(magic, 0xA1B2_3C4D | 0x4D3C_B2A1);
                if data.len() < 24 {
                    return Err(PcapError::Truncated);
                }
                let link_type = u32_at(data, 20, swapped)?;
                if link_type != LINKTYPE_ETHERNET {
                    return Err(PcapError::UnsupportedLinkType(link_type));
                }
                Ok(PcapReader {
                    data,
                    offset: 24,
                    format: Format::Classic {
                        swapped,
                        ts_divisor: if nanos { 1e9 } else { 1e6 },
                    },
                    link_type,
                })
            }
            // pcapng Section Header Block.
            0x0A0D_0D0A => {
                let order = u32_at(data, 8, false)?;
                let swapped = match order {
                    0x1A2B_3C4D => false,
                    0x4D3C_2B1A => true,
                    _ => return Err(PcapError::BadMagic),
                };
                let block_len = u32_at(data, 4, swapped)? as usize;
                if block_len < 28 || !block_len.is_multiple_of(4) || block_len > data.len() {
                    return Err(PcapError::BadLength);
                }
                let mut reader = PcapReader {
                    data,
                    offset: block_len,
                    format: Format::PcapNg { swapped },
                    // Fixed once the first Interface Description Block
                    // arrives; EPBs before any IDB are a BadLength error.
                    link_type: u32::MAX,
                };
                reader.validate_first_idb()?;
                Ok(reader)
            }
            _ => Err(PcapError::BadMagic),
        }
    }

    /// Peeks ahead for the first IDB so an unsupported link type fails at
    /// open time, matching the classic-pcap behavior.
    fn validate_first_idb(&mut self) -> Result<(), PcapError> {
        let Format::PcapNg { swapped } = self.format else {
            // PANIC: only called from the pcapng constructor arm.
            unreachable!("validate_first_idb on classic pcap");
        };
        let mut off = self.offset;
        while off < self.data.len() {
            let block_type = u32_at(self.data, off, swapped)?;
            let block_len = u32_at(self.data, off + 4, swapped)? as usize;
            if block_len < 12 || !block_len.is_multiple_of(4) || off + block_len > self.data.len() {
                return Err(PcapError::BadLength);
            }
            if block_type == 1 {
                let link_type = u32::from(u16_at(self.data, off + 8, swapped)?);
                if link_type != LINKTYPE_ETHERNET {
                    return Err(PcapError::UnsupportedLinkType(link_type));
                }
                self.link_type = link_type;
                return Ok(());
            }
            off += block_len;
        }
        // A section with no interfaces carries no packets; treat as empty.
        Ok(())
    }

    /// The capture's link type (`LINKTYPE_ETHERNET` once opened).
    pub fn link_type(&self) -> u32 {
        self.link_type
    }

    /// Yields the next packet, `Ok(None)` at a clean end of capture.
    ///
    /// # Errors
    ///
    /// [`PcapError::Truncated`]/[`PcapError::BadLength`] when the image
    /// ends mid-record or a length field is inconsistent; parsing cannot
    /// continue past a structural error.
    #[allow(clippy::should_implement_trait)] // fallible, borrow-yielding next
    pub fn next(&mut self) -> Result<Option<CapturedPacket<'a>>, PcapError> {
        match self.format {
            Format::Classic {
                swapped,
                ts_divisor,
            } => self.next_classic(swapped, ts_divisor),
            Format::PcapNg { swapped } => self.next_ng(swapped),
        }
    }

    fn next_classic(
        &mut self,
        swapped: bool,
        ts_divisor: f64,
    ) -> Result<Option<CapturedPacket<'a>>, PcapError> {
        if self.offset == self.data.len() {
            return Ok(None);
        }
        let secs = u32_at(self.data, self.offset, swapped)?;
        let frac = u32_at(self.data, self.offset + 4, swapped)?;
        let incl_len = u32_at(self.data, self.offset + 8, swapped)? as usize;
        let data_start = self.offset + 16;
        let data_end = data_start
            .checked_add(incl_len)
            .ok_or(PcapError::BadLength)?;
        let data = self
            .data
            .get(data_start..data_end)
            .ok_or(PcapError::Truncated)?;
        self.offset = data_end;
        Ok(Some(CapturedPacket {
            time: f64::from(secs) + f64::from(frac) / ts_divisor,
            data,
        }))
    }

    fn next_ng(&mut self, swapped: bool) -> Result<Option<CapturedPacket<'a>>, PcapError> {
        while self.offset < self.data.len() {
            let block_type = u32_at(self.data, self.offset, swapped)?;
            let block_len = u32_at(self.data, self.offset + 4, swapped)? as usize;
            if block_len < 12
                || !block_len.is_multiple_of(4)
                || self.offset + block_len > self.data.len()
            {
                return Err(PcapError::BadLength);
            }
            let body = self.offset + 8;
            self.offset += block_len;
            // Enhanced Packet Block; every other block type (IDB already
            // validated at open, statistics, custom) is skipped.
            if block_type == 6 {
                if self.link_type == u32::MAX {
                    return Err(PcapError::BadLength);
                }
                let ts_high = u32_at(self.data, body + 4, swapped)?;
                let ts_low = u32_at(self.data, body + 8, swapped)?;
                let captured = u32_at(self.data, body + 12, swapped)? as usize;
                let data_start = body + 20;
                let data_end = data_start
                    .checked_add(captured)
                    .ok_or(PcapError::BadLength)?;
                // Packet data is padded to 4 bytes inside the block.
                if data_end > self.offset - 4 {
                    return Err(PcapError::BadLength);
                }
                let data = self
                    .data
                    .get(data_start..data_end)
                    .ok_or(PcapError::Truncated)?;
                let micros = (u64::from(ts_high) << 32) | u64::from(ts_low);
                return Ok(Some(CapturedPacket {
                    time: micros as f64 / 1e6,
                    data,
                }));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::CaptureBuilder;

    #[test]
    fn empty_input_is_bad_magic_not_panic() {
        assert_eq!(PcapReader::new(&[]).unwrap_err(), PcapError::Truncated);
        assert_eq!(
            PcapReader::new(&[0u8; 64]).unwrap_err(),
            PcapError::BadMagic
        );
    }

    #[test]
    fn classic_capture_round_trips_borrowed_packets() {
        let mut builder = CaptureBuilder::new();
        builder.raw_packet(1.25, &[0xAB; 60]);
        builder.raw_packet(2.5, &[0xCD; 42]);
        let image = builder.finish();
        let mut reader = PcapReader::new(&image).unwrap();
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.data, &[0xAB; 60][..]);
        assert!((first.time - 1.25).abs() < 1e-6);
        // Zero-copy: the packet slice points into the capture image.
        let image_range = image.as_ptr() as usize..image.as_ptr() as usize + image.len();
        assert!(image_range.contains(&(first.data.as_ptr() as usize)));
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.data.len(), 42);
        assert!(reader.next().unwrap().is_none());
    }

    #[test]
    fn truncated_record_reports_error() {
        let mut builder = CaptureBuilder::new();
        builder.raw_packet(1.0, &[0xEE; 30]);
        let mut image = builder.finish();
        image.truncate(image.len() - 7);
        let mut reader = PcapReader::new(&image).unwrap();
        assert_eq!(reader.next().unwrap_err(), PcapError::Truncated);
    }

    #[test]
    fn non_ethernet_link_type_is_rejected() {
        let mut builder = CaptureBuilder::new();
        builder.raw_packet(0.5, &[0u8; 8]);
        let mut image = builder.finish();
        image[20] = 147; // DLT_USER0
        assert_eq!(
            PcapReader::new(&image).unwrap_err(),
            PcapError::UnsupportedLinkType(147)
        );
    }
}
