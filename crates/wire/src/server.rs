//! Live Modbus-TCP monitoring without an async runtime.
//!
//! [`WireServer`] is a readiness-driven poll loop over **nonblocking**
//! std sockets: one nonblocking `TcpListener` plus a table of nonblocking
//! per-connection streams. Each [`WireServer::poll`] call sweeps the
//! listener (accepting every pending connection) and every live stream
//! (reading until `WouldBlock` into one shared scratch buffer), feeds the
//! bytes through that connection's [`MbapDecoder`], and hands decoded
//! frames to the caller's sink. No threads, no epoll wrapper, no
//! dependencies — the caller owns the cadence, typically alternating
//! `poll` with `Engine::ingest_batch` exactly like the replay path.
//!
//! Command/response direction is inferred from MBAP transaction ids: a
//! monitor port sees both halves of the conversation on one connection,
//! and a Modbus-TCP response echoes its command's transaction id. Each
//! connection keeps a small ring of recently seen ids — an unseen id is a
//! command (and enters the ring), a match is its response (and leaves).
//! A fresh polling master re-using ids after a restart self-corrects
//! within one ring's worth of traffic.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Instant;

use icsad_engine::{FrameBytes, RawFrame};

use crate::mbap::MbapDecoder;

/// Pending command transaction ids remembered per connection. Modbus
/// masters rarely pipeline more than a handful of outstanding requests.
const TXN_RING: usize = 32;

/// Read scratch shared by all connections within one poll sweep.
const READ_CHUNK: usize = 4096;

/// Counters for one [`WireServer`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections that have since closed (EOF or error).
    pub closed: u64,
    /// Stream bytes read across all connections.
    pub bytes: u64,
    /// Modbus frames emitted to the sink.
    pub frames: u64,
    /// Stream bytes discarded while decoders resynchronized.
    pub skipped_bytes: u64,
    /// Distinct garbage runs survived across all decoders.
    pub resyncs: u64,
}

struct Conn {
    stream: TcpStream,
    decoder: MbapDecoder,
    link: u32,
    /// Ring of outstanding command transaction ids (see module docs).
    txns: [u16; TXN_RING],
    txn_len: usize,
    txn_next: usize,
}

impl Conn {
    /// Classifies a transaction id and updates the ring: unseen → command,
    /// seen → response (consumed).
    fn classify(&mut self, txn: u16) -> bool {
        if let Some(i) = self.txns[..self.txn_len].iter().position(|&t| t == txn) {
            self.txns.copy_within(i + 1..self.txn_len, i);
            self.txn_len -= 1;
            if self.txn_next > i {
                self.txn_next -= 1;
            }
            return false;
        }
        if self.txn_len < TXN_RING {
            self.txns[self.txn_len] = txn;
            self.txn_len += 1;
        } else {
            // Ring full: evict round-robin so a master that never gets
            // responses cannot pin the table.
            self.txns[self.txn_next] = txn;
            self.txn_next = (self.txn_next + 1) % TXN_RING;
        }
        true
    }
}

/// Nonblocking Modbus-TCP monitor (see the module docs).
pub struct WireServer {
    listener: TcpListener,
    conns: Vec<Conn>,
    next_link: u32,
    /// Link ids released for reuse by [`WireServer::drain_closed_links`].
    free_links: Vec<u32>,
    /// Links closed since the last [`WireServer::drain_closed_links`].
    closed_links: Vec<u32>,
    started: Instant,
    scratch: Vec<u8>,
    stats: ServerStats,
}

impl WireServer {
    /// Binds a nonblocking listener. Bind to port 0 to let the OS pick
    /// (the loopback tests do).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(WireServer {
            listener,
            conns: Vec::new(),
            next_link: 0,
            free_links: Vec::new(),
            closed_links: Vec::new(),
            started: Instant::now(),
            scratch: vec![0u8; READ_CHUNK],
            stats: ServerStats::default(),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// One readiness sweep: accepts pending connections, drains readable
    /// streams, decodes, and emits frames. Returns the number of frames
    /// handed to `sink`. Never blocks.
    pub fn poll<F: FnMut(RawFrame)>(&mut self, mut sink: F) -> usize {
        // Accept everything already queued.
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.stats.accepted += 1;
                    // Recycle a drained link id if one is free; otherwise
                    // mint the next fresh id.
                    let link = self.free_links.pop().unwrap_or_else(|| {
                        let link = self.next_link;
                        self.next_link += 1;
                        link
                    });
                    self.conns.push(Conn {
                        stream,
                        decoder: MbapDecoder::new(),
                        link,
                        txns: [0; TXN_RING],
                        txn_len: 0,
                        txn_next: 0,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        let now = self.started.elapsed().as_secs_f64();
        let mut emitted = 0usize;
        let mut i = 0;
        while i < self.conns.len() {
            let mut open = true;
            loop {
                let conn = &mut self.conns[i];
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        open = false;
                        break;
                    }
                    Ok(n) => {
                        self.stats.bytes += n as u64;
                        conn.decoder.push(&self.scratch[..n]);
                        while let Some(frame) = conn.decoder.next_frame() {
                            let txn = frame.transaction;
                            let wire = FrameBytes::from(frame.adu);
                            let is_command = conn.classify(txn);
                            self.stats.frames += 1;
                            emitted += 1;
                            sink(RawFrame {
                                time: now,
                                wire,
                                is_command,
                                label: None,
                                link: conn.link,
                            });
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        open = false;
                        break;
                    }
                }
            }
            if open {
                i += 1;
            } else {
                let conn = self.conns.swap_remove(i);
                self.stats.closed += 1;
                self.stats.skipped_bytes += conn.decoder.stats().skipped_bytes;
                self.stats.resyncs += conn.decoder.stats().resyncs;
                self.closed_links.push(conn.link);
            }
        }
        emitted
    }

    /// Moves the link ids of connections closed since the last call into
    /// `out` and releases them for reuse by future accepts.
    ///
    /// Callers that feed an engine should retire each drained link before
    /// the next poll, so a reconnect landing on a recycled id starts from
    /// a cold lane. Callers that never drain keep strictly monotonic
    /// accept-order ids.
    pub fn drain_closed_links(&mut self, out: &mut Vec<u32>) {
        for &link in &self.closed_links {
            self.free_links.push(link);
            out.push(link);
        }
        self.closed_links.clear();
    }

    /// Live connection count.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Counters so far, including decoders of still-open connections.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        for conn in &self.conns {
            stats.skipped_bytes += conn.decoder.stats().skipped_bytes;
            stats.resyncs += conn.decoder.stats().resyncs;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icsad_modbus::crc::crc16;
    use std::io::Write;
    use std::time::Duration;

    fn mbap(txn: u16, unit: u8, pdu: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&txn.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
        out.push(unit);
        out.extend_from_slice(pdu);
        out
    }

    fn rtu(unit: u8, pdu: &[u8]) -> Vec<u8> {
        let mut adu = Vec::new();
        adu.push(unit);
        adu.extend_from_slice(pdu);
        let crc = crc16(&adu);
        adu.extend_from_slice(&crc.to_le_bytes());
        adu
    }

    fn poll_until<F: FnMut(RawFrame)>(server: &mut WireServer, want: usize, mut sink: F) {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = 0;
        while got < want {
            got += server.poll(&mut sink);
            assert!(Instant::now() < deadline, "timed out waiting for frames");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn loopback_frames_arrive_with_direction_and_links() {
        let mut server = WireServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");

        let mut client = TcpStream::connect(addr).expect("connect");
        // A command, its echo (the monitor sees both sides), then a second
        // command with a fresh transaction id.
        client.write_all(&mbap(7, 4, &[0x03, 0x00, 0x2A])).unwrap();
        client
            .write_all(&mbap(7, 4, &[0x03, 0x02, 0x01, 0x02]))
            .unwrap();
        client.write_all(&mbap(8, 4, &[0x10, 0x01])).unwrap();
        client.flush().unwrap();

        let mut frames = Vec::new();
        poll_until(&mut server, 3, |f| frames.push(f));

        assert_eq!(frames.len(), 3);
        assert!(frames[0].is_command, "first txn 7 sighting is the command");
        assert!(!frames[1].is_command, "echoed txn 7 is the response");
        assert!(frames[2].is_command, "txn 8 is a new command");
        assert_eq!(
            frames[0].wire,
            FrameBytes::from(&rtu(4, &[0x03, 0x00, 0x2A])[..])
        );
        assert!(frames.iter().all(|f| f.link == 0 && f.label.is_none()));
        assert_eq!(server.connections(), 1);

        // A second client gets the next link id.
        let mut other = TcpStream::connect(addr).expect("connect 2");
        other.write_all(&mbap(1, 9, &[0x03, 0x01])).unwrap();
        other.flush().unwrap();
        let mut more = Vec::new();
        poll_until(&mut server, 1, |f| more.push(f));
        assert_eq!(more[0].link, 1);

        drop(client);
        drop(other);
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.connections() > 0 {
            server.poll(|_| {});
            assert!(Instant::now() < deadline, "timed out waiting for close");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.closed, 2);
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.skipped_bytes, 0);
    }

    #[test]
    fn drained_link_ids_are_recycled_for_new_connections() {
        let mut server = WireServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");

        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(&mbap(1, 4, &[0x03, 0x01])).unwrap();
        client.flush().unwrap();
        let mut links = Vec::new();
        poll_until(&mut server, 1, |f| links.push(f.link));
        assert_eq!(links, vec![0]);

        drop(client);
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.connections() > 0 {
            server.poll(|_| {});
            assert!(Instant::now() < deadline, "timed out waiting for close");
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut closed = Vec::new();
        server.drain_closed_links(&mut closed);
        assert_eq!(closed, vec![0]);

        // The reconnect lands back on the drained link id, not a fresh one.
        let mut again = TcpStream::connect(addr).expect("reconnect");
        again.write_all(&mbap(2, 4, &[0x03, 0x02])).unwrap();
        again.flush().unwrap();
        let mut more = Vec::new();
        poll_until(&mut server, 1, |f| more.push(f.link));
        assert_eq!(more, vec![0]);
        assert_eq!(server.stats().accepted, 2);

        // Draining nothing yields nothing.
        let mut none = Vec::new();
        server.drain_closed_links(&mut none);
        assert!(none.is_empty());
    }
}
