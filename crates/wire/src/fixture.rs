//! Deterministic Modbus-TCP capture synthesis.
//!
//! [`CaptureBuilder`] writes a classic pcap image (little endian,
//! microsecond timestamps, LINKTYPE_ETHERNET) from RTU ADUs: each ADU is
//! stripped to its PDU, wrapped in an MBAP header, and encapsulated in
//! Ethernet II / IPv4 / TCP with per-connection sequence numbers and
//! transaction ids (commands mint a fresh transaction id, responses echo
//! the last command's). The committed test fixture, the robustness
//! proptests, and the `wire_replay` bench all build captures here, so the
//! bytes under test are reproducible from source.
//!
//! The builder is byte-deterministic: the same call sequence always
//! yields the same image, which the fixture self-check test relies on to
//! prove the committed capture matches its generator.

/// Smallest RTU ADU the builder will wrap: address + one PDU byte + CRC16.
const MIN_RTU_ADU: usize = 4;

const MASTER_IP: [u8; 4] = [10, 0, 0, 1];
const SLAVE_IP: [u8; 4] = [10, 0, 0, 2];
/// First ephemeral master port; connection `n` uses `BASE_PORT + n`.
const BASE_PORT: u16 = 49152;

#[derive(Default)]
struct ConnState {
    next_txn: u16,
    last_txn: u16,
    seq_to_slave: u32,
    seq_to_master: u32,
}

/// Classic-pcap capture writer (see the module docs).
pub struct CaptureBuilder {
    out: Vec<u8>,
    /// Per-connection framing state, keyed by connection index (small,
    /// linear scan — fixtures use a handful of connections).
    conns: Vec<(u16, ConnState)>,
    ip_id: u16,
}

impl Default for CaptureBuilder {
    fn default() -> Self {
        CaptureBuilder::new()
    }
}

impl CaptureBuilder {
    /// Starts a capture: classic pcap global header, little endian,
    /// microsecond timestamps, Ethernet link type.
    pub fn new() -> Self {
        let mut out = Vec::new();
        out.extend_from_slice(&0xA1B2_C3D4u32.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
        CaptureBuilder {
            out,
            conns: Vec::new(),
            ip_id: 0,
        }
    }

    /// Appends one record with arbitrary link-layer bytes.
    pub fn raw_packet(&mut self, time: f64, data: &[u8]) {
        let secs = time as u32;
        let micros = ((time - f64::from(secs)) * 1e6).round() as u32;
        self.out.extend_from_slice(&secs.to_le_bytes());
        self.out.extend_from_slice(&micros.to_le_bytes());
        self.out
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.out.extend_from_slice(data);
    }

    /// Appends one Modbus-TCP packet carrying `rtu_wire` (a full RTU ADU:
    /// `address + PDU + CRC16`) on the default connection (index 0).
    pub fn modbus(&mut self, time: f64, rtu_wire: &[u8], is_command: bool) {
        self.modbus_on(0, time, rtu_wire, is_command);
    }

    /// Like [`CaptureBuilder::modbus`] but on connection `conn`; each
    /// connection gets its own master port (`49152 + conn`), sequence
    /// numbers, and transaction-id stream.
    ///
    /// # Panics
    ///
    /// If `rtu_wire` is shorter than a minimal RTU ADU — the fixture
    /// builder wraps well-formed frames; garbage goes in via
    /// [`CaptureBuilder::raw_packet`].
    pub fn modbus_on(&mut self, conn: u16, time: f64, rtu_wire: &[u8], is_command: bool) {
        assert!(
            rtu_wire.len() >= MIN_RTU_ADU,
            "RTU ADU must carry address + PDU + CRC"
        );
        let unit = rtu_wire[0];
        let pdu = &rtu_wire[1..rtu_wire.len() - 2];

        let state = self.conn_state(conn);
        let txn = if is_command {
            let t = state.next_txn;
            state.next_txn = state.next_txn.wrapping_add(1);
            state.last_txn = t;
            t
        } else {
            state.last_txn
        };

        let mut mbap = Vec::with_capacity(crate::MBAP_HEADER_LEN + pdu.len());
        mbap.extend_from_slice(&txn.to_be_bytes());
        mbap.extend_from_slice(&0u16.to_be_bytes());
        mbap.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
        mbap.push(unit);
        mbap.extend_from_slice(pdu);

        self.tcp_packet(conn, time, is_command, 0x18, &mbap);
    }

    /// Appends a payload-less FIN|ACK from the master closing connection
    /// `conn`, and resets the connection's framing state so a later
    /// packet on the same connection index models a fresh TCP connection
    /// (new sequence numbers and transaction ids on the same 4-tuple).
    ///
    /// # Panics
    ///
    /// If `conn` never carried a packet — closing a connection that was
    /// never opened is a fixture-script bug.
    pub fn close(&mut self, conn: u16, time: f64) {
        assert!(
            self.conns.iter().any(|(id, _)| *id == conn),
            "close of a connection never opened"
        );
        self.tcp_packet(conn, time, true, 0x11, &[]);
        let state = self.conn_state(conn);
        *state = ConnState::default();
    }

    fn conn_state(&mut self, conn: u16) -> &mut ConnState {
        match self.conns.iter_mut().position(|(id, _)| *id == conn) {
            Some(i) => &mut self.conns[i].1,
            None => {
                self.conns.push((conn, ConnState::default()));
                // PANIC: the entry was pushed on the line above.
                &mut self.conns.last_mut().expect("just pushed").1
            }
        }
    }

    /// Appends one Ethernet II / IPv4 / TCP packet on connection `conn`
    /// carrying `payload` with the given TCP `flags`.
    fn tcp_packet(&mut self, conn: u16, time: f64, is_command: bool, flags: u8, payload: &[u8]) {
        let master_port = BASE_PORT + conn;
        let state = self.conn_state(conn);
        let (src_ip, dst_ip, src_port, dst_port, seq) = if is_command {
            let seq = state.seq_to_slave;
            state.seq_to_slave = state.seq_to_slave.wrapping_add(payload.len() as u32);
            (
                MASTER_IP,
                SLAVE_IP,
                master_port,
                crate::MODBUS_TCP_PORT,
                seq,
            )
        } else {
            let seq = state.seq_to_master;
            state.seq_to_master = state.seq_to_master.wrapping_add(payload.len() as u32);
            (
                SLAVE_IP,
                MASTER_IP,
                crate::MODBUS_TCP_PORT,
                master_port,
                seq,
            )
        };

        let mut pkt = Vec::with_capacity(14 + 20 + 20 + payload.len());
        // Ethernet II: deterministic locally-administered MACs.
        pkt.extend_from_slice(&[0x02, 0, 0, 0, 0, if is_command { 2 } else { 1 }]);
        pkt.extend_from_slice(&[0x02, 0, 0, 0, 0, if is_command { 1 } else { 2 }]);
        pkt.extend_from_slice(&0x0800u16.to_be_bytes());
        // IPv4, no options; checksums left zero (the replay layer does not
        // verify them, and real capture tools accept offloaded zeros).
        let total_len = (20 + 20 + payload.len()) as u16;
        pkt.push(0x45);
        pkt.push(0);
        pkt.extend_from_slice(&total_len.to_be_bytes());
        pkt.extend_from_slice(&self.ip_id.to_be_bytes());
        self.ip_id = self.ip_id.wrapping_add(1);
        pkt.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
        pkt.push(64); // TTL
        pkt.push(6); // TCP
        pkt.extend_from_slice(&0u16.to_be_bytes()); // header checksum
        pkt.extend_from_slice(&src_ip);
        pkt.extend_from_slice(&dst_ip);
        // TCP, no options.
        pkt.extend_from_slice(&src_port.to_be_bytes());
        pkt.extend_from_slice(&dst_port.to_be_bytes());
        pkt.extend_from_slice(&seq.to_be_bytes());
        pkt.extend_from_slice(&0u32.to_be_bytes()); // ack
        pkt.push(5 << 4); // data offset
        pkt.push(flags);
        pkt.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
        pkt.extend_from_slice(&0u16.to_be_bytes()); // checksum
        pkt.extend_from_slice(&0u16.to_be_bytes()); // urgent
        pkt.extend_from_slice(payload);

        self.raw_packet(time, &pkt);
    }

    /// The finished capture image.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_byte_deterministic() {
        let build = || {
            let mut b = CaptureBuilder::new();
            b.modbus(0.5, &[4, 0x03, 0x00, 0x2A, 0xAA, 0xBB], true);
            b.modbus(0.6, &[4, 0x03, 0x02, 0x01, 0x02, 0xCC, 0xDD], false);
            b.modbus_on(1, 0.7, &[7, 0x10, 0x01, 0xEE, 0xFF], true);
            b.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn close_emits_fin_and_resets_connection_state() {
        let build = || {
            let mut b = CaptureBuilder::new();
            b.modbus(0.1, &[4, 0x03, 0x00, 0xAA, 0xBB], true);
            b.close(0, 0.2);
            b.modbus(0.3, &[4, 0x03, 0x01, 0xCC, 0xDD], true);
            b.finish()
        };
        let image = build();
        assert_eq!(image, build(), "close path must stay byte-deterministic");

        // Walk the records: flags byte sits at Ethernet(14)+IP(20)+13
        // within each packet's data.
        let mut flags = Vec::new();
        let mut txns = Vec::new();
        let mut off = 24;
        while off < image.len() {
            let incl = u32::from_le_bytes(image[off + 8..off + 12].try_into().unwrap()) as usize;
            let data = &image[off + 16..off + 16 + incl];
            flags.push(data[14 + 20 + 13]);
            if incl > 54 {
                txns.push(u16::from_be_bytes([data[54], data[55]]));
            }
            off += 16 + incl;
        }
        assert_eq!(flags, vec![0x18, 0x11, 0x18], "PSH|ACK, FIN|ACK, PSH|ACK");
        // The post-close command restarts the transaction-id stream.
        assert_eq!(txns, vec![0, 0]);
    }

    #[test]
    fn command_and_response_share_a_transaction_id() {
        let mut b = CaptureBuilder::new();
        b.modbus(0.1, &[4, 0x03, 0x00, 0xAA, 0xBB], true);
        b.modbus(0.2, &[4, 0x03, 0x01, 0xCC, 0xDD], false);
        b.modbus(0.3, &[4, 0x03, 0x02, 0xEE, 0xFF], true);
        let image = b.finish();
        // Transaction id sits 34 bytes into each packet's link-layer data
        // (14 Ethernet + 20 IP + 20 TCP puts MBAP at offset 54; txn is its
        // first two bytes). Records start after the 24-byte global header.
        let mut txns = Vec::new();
        let mut off = 24;
        while off < image.len() {
            let incl = u32::from_le_bytes(image[off + 8..off + 12].try_into().unwrap()) as usize;
            let data = &image[off + 16..off + 16 + incl];
            txns.push(u16::from_be_bytes([data[54], data[55]]));
            off += 16 + incl;
        }
        assert_eq!(txns, vec![0, 0, 1]);
    }
}
