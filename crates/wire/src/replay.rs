//! Capture replay: pcap image → demultiplexed [`RawFrame`] stream.
//!
//! [`WireReplay`] walks a capture with [`PcapReader`] (borrowed packets,
//! no copies), peels Ethernet II / IPv4 / TCP, groups segments into
//! connections by canonical 4-tuple, and runs one [`MbapDecoder`] per
//! connection **direction** so interleaved command and response streams
//! never confuse each other's framing. Each decoded frame becomes a
//! [`RawFrame`]:
//!
//! * `link` — the connection's id, assigned in first-seen order starting
//!   at 0, so a single-connection capture lands on link 0 exactly like
//!   direct ingest of the same traffic;
//! * `is_command` — true when the segment was addressed **to** port 502
//!   (master → PLC), matching the Modbus-TCP convention;
//! * `wire` — the RTU re-encapsulation, inline in the frame
//!   ([`FrameBytes`]) — no allocation for ordinary frame sizes;
//! * `label` — always `None`; captures carry no ground truth.
//!
//! Non-IPv4/TCP packets (ARP, ICMP, IPv6) are counted and skipped, and
//! TCP segments are consumed in file order — the replayer trusts the
//! capture to be in-order, as single-host captures of a polling master
//! are.

use std::collections::HashMap;

use icsad_engine::{FrameBytes, RawFrame};

use crate::mbap::MbapDecoder;
use crate::pcap::{PcapError, PcapReader};

/// One endpoint of a TCP connection.
type Endpoint = ([u8; 4], u16);

/// Counters for one replay pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Link-layer packets seen in the capture.
    pub packets: u64,
    /// Modbus frames emitted to the sink.
    pub frames: u64,
    /// Packets that were not Ethernet/IPv4/TCP (or too short to be).
    pub ignored_packets: u64,
    /// Distinct TCP connections observed (cumulative: reconnects count
    /// again).
    pub connections: u32,
    /// Connections closed by a FIN or RST segment.
    pub closed_connections: u64,
    /// Stream bytes discarded while the MBAP decoders resynchronized.
    pub skipped_bytes: u64,
    /// Distinct garbage runs survived across all decoders.
    pub resyncs: u64,
}

/// Per-connection decoding state: one decoder per direction.
struct Connection {
    to_slave: MbapDecoder,
    to_master: MbapDecoder,
}

/// Streaming capture replayer (see the module docs).
#[derive(Default)]
pub struct WireReplay {
    // NONDET: HashMap is used for keyed lookup only; link ids are handed
    // out in packet arrival order, so iteration order never matters.
    conn_ids: HashMap<(Endpoint, Endpoint), usize>,
    conns: Vec<Connection>,
    /// Link ids of closed connections whose decoder slots may be handed
    /// to future connections. Ids move here only via
    /// [`WireReplay::drain_closed_links`], so a caller that never drains
    /// (the monolithic [`WireReplay::replay`] path) still sees monotonic
    /// first-seen link ids.
    free_ids: Vec<usize>,
    /// Links closed since the last [`WireReplay::drain_closed_links`].
    closed: Vec<u32>,
    /// Cumulative connections opened (reconnects count again).
    opened: u32,
    closed_count: u64,
    /// Decoder counters folded in from closed connections.
    folded_skipped: u64,
    folded_resyncs: u64,
    packets: u64,
    frames: u64,
    ignored: u64,
}

impl WireReplay {
    /// A replayer with no connections yet.
    pub fn new() -> Self {
        WireReplay::default()
    }

    /// Replays a whole capture image into `sink`, returning the final
    /// counters. State persists across calls, so multi-file captures of
    /// the same session can be replayed back to back.
    ///
    /// # Errors
    ///
    /// Propagates [`PcapError`] from the container parser; everything
    /// above the container (truncated IP headers, garbled MBAP) degrades
    /// to counters instead of failing.
    pub fn replay<F: FnMut(RawFrame)>(
        &mut self,
        capture: &[u8],
        mut sink: F,
    ) -> Result<ReplayStats, PcapError> {
        let mut reader = PcapReader::new(capture)?;
        while let Some(packet) = reader.next()? {
            self.handle_packet(packet.time, packet.data, &mut sink);
        }
        Ok(self.stats())
    }

    /// Feeds one link-layer packet (for callers driving their own capture
    /// source, e.g. a live ring buffer).
    pub fn handle_packet<F: FnMut(RawFrame)>(&mut self, time: f64, data: &[u8], sink: &mut F) {
        self.packets += 1;
        let Some(TcpSegment {
            key,
            is_command,
            fin_rst,
            payload,
        }) = parse_tcp(data)
        else {
            self.ignored += 1;
            return;
        };
        let conn_id = match self.conn_ids.get(&key) {
            Some(&id) => id,
            None => {
                let id = match self.free_ids.pop() {
                    Some(id) => id,
                    None => {
                        self.conns.push(Connection {
                            to_slave: MbapDecoder::new(),
                            to_master: MbapDecoder::new(),
                        });
                        self.conns.len() - 1
                    }
                };
                self.conn_ids.insert(key, id);
                self.opened += 1;
                id
            }
        };
        let decoder = if is_command {
            &mut self.conns[conn_id].to_slave
        } else {
            &mut self.conns[conn_id].to_master
        };
        decoder.push(payload);
        while let Some(frame) = decoder.next_frame() {
            self.frames += 1;
            sink(RawFrame {
                time,
                wire: FrameBytes::from(frame.adu),
                is_command,
                label: None,
                link: conn_id as u32,
            });
        }
        // A FIN or RST (either direction) ends the connection: any data it
        // carried was processed above, so fold the decoder counters, reset
        // the slot and mark the link id closed. The id is not reused until
        // the caller acknowledges the close via `drain_closed_links`.
        if fin_rst {
            self.conn_ids.remove(&key);
            let conn = &mut self.conns[conn_id];
            for dec in [&mut conn.to_slave, &mut conn.to_master] {
                self.folded_skipped += dec.stats().skipped_bytes;
                self.folded_resyncs += dec.stats().resyncs;
                *dec = MbapDecoder::new();
            }
            self.closed_count += 1;
            self.closed.push(conn_id as u32);
        }
    }

    /// Moves the link ids of connections closed since the last call into
    /// `out` and releases them for reuse by future connections.
    ///
    /// Callers that feed an engine should retire each drained link before
    /// ingesting further packets, so a reconnect that lands on a recycled
    /// id starts from a cold lane. Callers that never drain keep strictly
    /// monotonic first-seen ids.
    pub fn drain_closed_links(&mut self, out: &mut Vec<u32>) {
        for &link in &self.closed {
            self.free_ids.push(link as usize);
            out.push(link);
        }
        self.closed.clear();
    }

    /// Counters so far, aggregated across all connection decoders.
    pub fn stats(&self) -> ReplayStats {
        let mut stats = ReplayStats {
            packets: self.packets,
            frames: self.frames,
            ignored_packets: self.ignored,
            connections: self.opened,
            closed_connections: self.closed_count,
            skipped_bytes: self.folded_skipped,
            resyncs: self.folded_resyncs,
        };
        for conn in &self.conns {
            for dec in [&conn.to_slave, &conn.to_master] {
                stats.skipped_bytes += dec.stats().skipped_bytes;
                stats.resyncs += dec.stats().resyncs;
            }
        }
        stats
    }
}

/// One peeled TCP segment (see [`parse_tcp`]).
struct TcpSegment<'a> {
    /// Canonical connection key (both directions hash to one connection).
    key: (Endpoint, Endpoint),
    /// Destination port is 502: master → slave traffic.
    is_command: bool,
    /// The segment carries a FIN or RST flag.
    fin_rst: bool,
    /// TCP payload bytes.
    payload: &'a [u8],
}

/// Peels Ethernet II / IPv4 / TCP; `None` for anything that is not a
/// well-formed Modbus-capable TCP segment.
fn parse_tcp(data: &[u8]) -> Option<TcpSegment<'_>> {
    // Ethernet II, IPv4 ethertype.
    if data.len() < 14 || data[12..14] != [0x08, 0x00] {
        return None;
    }
    let ip = &data[14..];
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0x0F) * 4;
    let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    if ihl < 20 || total_len < ihl || total_len > ip.len() || ip[9] != 6 {
        return None;
    }
    let src_ip: [u8; 4] = ip[12..16].try_into().ok()?;
    let dst_ip: [u8; 4] = ip[16..20].try_into().ok()?;
    let tcp = &ip[ihl..total_len];
    if tcp.len() < 20 {
        return None;
    }
    let src_port = u16::from_be_bytes([tcp[0], tcp[1]]);
    let dst_port = u16::from_be_bytes([tcp[2], tcp[3]]);
    let data_off = usize::from(tcp[12] >> 4) * 4;
    if data_off < 20 || data_off > tcp.len() {
        return None;
    }
    let a = (src_ip, src_port);
    let b = (dst_ip, dst_port);
    Some(TcpSegment {
        // Canonical ordering makes both directions hash to one connection.
        key: if a <= b { (a, b) } else { (b, a) },
        is_command: dst_port == crate::MODBUS_TCP_PORT,
        fin_rst: tcp[13] & 0x05 != 0,
        payload: &tcp[data_off..],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::CaptureBuilder;
    use icsad_modbus::crc::crc16;

    fn rtu(unit: u8, pdu: &[u8]) -> Vec<u8> {
        let mut adu = Vec::new();
        adu.push(unit);
        adu.extend_from_slice(pdu);
        let crc = crc16(&adu);
        adu.extend_from_slice(&crc.to_le_bytes());
        adu
    }

    #[test]
    fn single_connection_round_trips_bit_identically() {
        let cmd = rtu(4, &[0x03, 0x00, 0x2A]);
        let rsp = rtu(4, &[0x03, 0x02, 0x01, 0x02]);
        let mut builder = CaptureBuilder::new();
        builder.modbus(1.0, &cmd, true);
        builder.modbus(1.1, &rsp, false);
        let image = builder.finish();

        let mut frames = Vec::new();
        let mut replay = WireReplay::new();
        let stats = replay.replay(&image, |f| frames.push(f)).unwrap();

        assert_eq!(stats.packets, 2);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.ignored_packets, 0);
        assert_eq!(stats.skipped_bytes, 0);

        assert_eq!(frames.len(), 2);
        assert_eq!(&*frames[0].wire, &cmd[..], "command RTU must round-trip");
        assert!(frames[0].is_command);
        assert_eq!(frames[0].link, 0);
        assert!(frames[0].wire.is_inline());
        assert_eq!(&*frames[1].wire, &rsp[..]);
        assert!(!frames[1].is_command);
        assert!((frames[1].time - 1.1).abs() < 1e-6);
        assert!(frames.iter().all(|f| f.label.is_none()));
    }

    #[test]
    fn connections_get_link_ids_in_first_seen_order() {
        let mut builder = CaptureBuilder::new();
        builder.modbus_on(2, 1.0, &rtu(9, &[0x03, 0x01]), true);
        builder.modbus_on(0, 1.1, &rtu(4, &[0x03, 0x02]), true);
        builder.modbus_on(2, 1.2, &rtu(9, &[0x03, 0x03]), false);
        builder.modbus_on(1, 1.3, &rtu(7, &[0x03, 0x04]), true);
        let image = builder.finish();

        let mut links = Vec::new();
        let mut replay = WireReplay::new();
        let stats = replay.replay(&image, |f| links.push(f.link)).unwrap();
        assert_eq!(stats.connections, 3);
        // First-seen order, and the response rides its command's link.
        assert_eq!(links, vec![0, 1, 0, 2]);
    }

    #[test]
    fn non_modbus_packets_are_counted_not_fatal() {
        let mut builder = CaptureBuilder::new();
        builder.raw_packet(0.5, &[0xFF; 60]); // not Ethernet/IPv4
        builder.raw_packet(0.6, &[0x00; 10]); // too short for Ethernet
        builder.modbus(1.0, &rtu(4, &[0x03, 0x00]), true);
        let image = builder.finish();

        let mut count = 0usize;
        let mut replay = WireReplay::new();
        let stats = replay.replay(&image, |_| count += 1).unwrap();
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.ignored_packets, 2);
        assert_eq!(stats.frames, 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn fin_closes_connection_and_reconnect_reuses_drained_link() {
        let mut builder = CaptureBuilder::new();
        builder.modbus(1.0, &rtu(4, &[0x03, 0x01]), true);
        builder.close(0, 1.1);
        // Reconnect on the same 4-tuple: a brand-new connection.
        builder.modbus(1.2, &rtu(4, &[0x03, 0x02]), true);
        let image = builder.finish();

        // Without draining, the reconnect gets a fresh monotonic id.
        let mut links = Vec::new();
        let mut replay = WireReplay::new();
        let stats = replay.replay(&image, |f| links.push(f.link)).unwrap();
        assert_eq!(links, vec![0, 1]);
        assert_eq!(stats.connections, 2, "reconnect counts as a new connection");
        assert_eq!(stats.closed_connections, 1);

        // Draining between the close and the reconnect recycles link 0.
        let mut reader = crate::pcap::PcapReader::new(&image).unwrap();
        let mut replay = WireReplay::new();
        let mut links = Vec::new();
        let mut closed = Vec::new();
        while let Some(packet) = reader.next().unwrap() {
            replay.handle_packet(packet.time, packet.data, &mut |f| links.push(f.link));
            replay.drain_closed_links(&mut closed);
        }
        assert_eq!(links, vec![0, 0]);
        assert_eq!(closed, vec![0]);
        assert_eq!(replay.stats().connections, 2);
        assert_eq!(replay.stats().closed_connections, 1);
    }

    #[test]
    fn undrained_close_does_not_recycle_link_ids() {
        let mut builder = CaptureBuilder::new();
        builder.modbus_on(0, 1.0, &rtu(4, &[0x03, 0x01]), true);
        builder.close(0, 1.1);
        builder.modbus_on(1, 1.2, &rtu(7, &[0x03, 0x02]), true);
        let image = builder.finish();

        let mut links = Vec::new();
        let mut replay = WireReplay::new();
        replay.replay(&image, |f| links.push(f.link)).unwrap();
        // Connection index 1 must not land on the closed-but-undrained 0.
        assert_eq!(links, vec![0, 1]);
    }

    #[test]
    fn decoder_counters_survive_connection_close() {
        // Garbage bytes force a resync, then the connection closes: the
        // skipped/resync counters must not vanish with the decoder.
        let cmd = rtu(4, &[0x03, 0x00, 0x2A]);
        let mut builder = CaptureBuilder::new();
        builder.modbus(1.0, &cmd, true);
        let image = builder.finish();
        // Corrupt the MBAP protocol-id field so the decoder resyncs.
        let mut bad = image.clone();
        let mbap_off = 24 + 16 + 54;
        bad[mbap_off + 2] = 0xFF;

        let mut replay = WireReplay::new();
        replay.replay(&bad, |_| {}).unwrap();
        let before = replay.stats();
        assert!(before.skipped_bytes > 0, "corruption must skip bytes");

        let mut closer = CaptureBuilder::new();
        closer.modbus(2.0, &cmd, true);
        closer.close(0, 2.1);
        let close_image = closer.finish();
        // Feed only the FIN record (skip global header + first packet).
        let mut reader = crate::pcap::PcapReader::new(&close_image).unwrap();
        reader.next().unwrap();
        let fin = reader.next().unwrap().unwrap();
        replay.handle_packet(fin.time, fin.data, &mut |_| {});
        let after = replay.stats();
        assert_eq!(after.skipped_bytes, before.skipped_bytes);
        assert_eq!(after.resyncs, before.resyncs);
        assert_eq!(after.closed_connections, 1);
    }

    #[test]
    fn mbap_split_across_segments_reassembles() {
        // Hand-build two packets whose payloads split one MBAP frame.
        let cmd = rtu(4, &[0x10, 0x00, 0x01, 0x02, 0x03]);
        let mut builder = CaptureBuilder::new();
        builder.modbus(1.0, &cmd, true);
        let image = builder.finish();

        // Re-deliver the single packet's TCP payload in two halves by
        // splitting the captured packet at the TCP payload midpoint.
        let packet = &image[24 + 16..];
        let payload_start = 54; // 14 Ethernet + 20 IP + 20 TCP
        let mid = payload_start + (packet.len() - payload_start) / 2;

        let mut first = packet[..mid].to_vec();
        let second_payload = &packet[mid..];
        let mut second = packet[..payload_start].to_vec();
        second.extend_from_slice(second_payload);
        // Fix each clone's IPv4 total length to match its truncated body.
        for pkt in [&mut first, &mut second] {
            let total = (pkt.len() - 14) as u16;
            pkt[16..18].copy_from_slice(&total.to_be_bytes());
        }

        let mut frames = Vec::new();
        let mut replay = WireReplay::new();
        replay.handle_packet(1.0, &first, &mut |f| frames.push(f));
        assert!(frames.is_empty(), "half a frame must not emit");
        replay.handle_packet(1.0, &second, &mut |f| frames.push(f));
        assert_eq!(frames.len(), 1);
        assert_eq!(&*frames[0].wire, &cmd[..]);
    }
}
