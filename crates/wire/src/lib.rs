//! The wire layer: real Modbus-TCP traffic in, [`RawFrame`]s out.
//!
//! The detection engine speaks Modbus **RTU** frames (`address + PDU +
//! CRC16`) because that is what the paper's gas-pipeline capture contains.
//! Deployed ICS networks, though, overwhelmingly carry Modbus **TCP**:
//! the same PDUs wrapped in an MBAP header (transaction id, protocol id,
//! length, unit id) over TCP port 502, with the serial CRC dropped in
//! favor of TCP's own checksum. This crate closes that gap in three
//! pieces, none of which allocate per frame in steady state — the
//! engine's counting-allocator test covers the whole path:
//!
//! * [`MbapDecoder`] — an incremental MBAP framing state machine over one
//!   TCP byte stream. Feed it arbitrary segment boundaries; it re-syncs
//!   after garbage, counts what it skipped, and re-encapsulates each PDU
//!   as an RTU ADU (`unit + PDU + CRC16`) in a reusable buffer so the
//!   entire existing pipeline — lenient decode, payload features, CRC
//!   statistics — applies unchanged.
//! * [`PcapReader`] / [`WireReplay`] — a pcap/pcapng reader that borrows
//!   every packet straight out of the capture buffer (no per-frame
//!   copies) and a replay driver that demultiplexes TCP connections,
//!   assigns each one a stable [`RawFrame::link`], and streams decoded
//!   frames into a caller-provided sink at line rate.
//! * [`WireServer`] — a dependency-free poll loop over nonblocking
//!   sockets accepting many concurrent master/PLC connections, for live
//!   monitoring without pulling in an async runtime.
//!
//! [`fixture`] builds deterministic capture files (Ethernet/IPv4/TCP
//! encapsulation) from RTU byte streams — the committed test fixture and
//! the `wire_replay` bench both come from it.
//!
//! [`RawFrame`]: icsad_engine::RawFrame
//! [`RawFrame::link`]: icsad_engine::RawFrame::link

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixture;
pub mod mbap;
pub mod pcap;
pub mod replay;
pub mod server;

pub use mbap::{DecoderStats, MbapDecoder, MbapFrame, MBAP_HEADER_LEN, MBAP_MAX_LENGTH_FIELD};
pub use pcap::{CapturedPacket, PcapError, PcapReader};
pub use replay::{ReplayStats, WireReplay};
pub use server::{ServerStats, WireServer};

/// The IANA-registered Modbus-TCP port; replay uses it to tell commands
/// (to port 502) from responses (from port 502).
pub const MODBUS_TCP_PORT: u16 = 502;
