//! Incremental MBAP (Modbus-TCP) framing over one TCP byte stream.
//!
//! TCP is a byte stream: one segment may carry half a frame, three
//! frames, or garbage from a desynchronized or malicious peer. The
//! decoder is therefore a small state machine over an internal pending
//! buffer:
//!
//! ```text
//!            ┌─────────────—──── skip 1 byte, count it ─────┐
//!            ▼                                              │
//!   [need header] ──7 bytes──▶ [validate header] ──invalid──┘
//!            ▲                        │ valid
//!            │                        ▼
//!            └──emit frame──── [need body: 6+length bytes]
//! ```
//!
//! Header validation is the resync oracle: protocol id must be 0 and the
//! length field must cover at least a unit id + one PDU byte and at most
//! a maximal RTU PDU. On violation the decoder discards exactly one byte
//! and retries — the classic self-synchronizing scan — so a burst of
//! garbage costs its own length in scan steps, never a stall, and every
//! skipped byte is accounted in [`DecoderStats`].
//!
//! Decoded frames are **re-encapsulated as Modbus RTU** (`unit + PDU +
//! CRC16`) in a buffer owned by the decoder and reused frame to frame:
//! the detection pipeline's lenient RTU decode, payload features, and CRC
//! statistics then apply to TCP traffic unchanged, and a well-formed
//! tunneled RTU capture round-trips bit-identically (the CRC recomputed
//! here equals the one the serial frame carried).

use icsad_modbus::crc::crc16;
use icsad_modbus::MAX_ADU_LEN;

/// Bytes in an MBAP header: transaction id, protocol id, length (u16 big
/// endian each), then the unit id.
pub const MBAP_HEADER_LEN: usize = 7;

/// Largest acceptable MBAP `length` field: the unit id byte plus the
/// largest PDU an RTU ADU can carry (`MAX_ADU_LEN` minus address and
/// CRC). Larger values mark a desynchronized stream.
pub const MBAP_MAX_LENGTH_FIELD: usize = 1 + (MAX_ADU_LEN - 3);

/// Pending-buffer compaction threshold: once this many consumed bytes
/// accumulate at the front, shift the tail down (a memmove, never an
/// allocation).
const COMPACT_AT: usize = 4096;

/// One decoded MBAP frame, borrowed from the decoder's reusable buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbapFrame<'a> {
    /// MBAP transaction identifier (echoed by responses).
    pub transaction: u16,
    /// Unit (slave) identifier from the MBAP header.
    pub unit: u8,
    /// The frame re-encapsulated as a Modbus RTU ADU: `unit + PDU +
    /// CRC16`, ready for the engine's RTU pipeline.
    pub adu: &'a [u8],
}

/// Counters for one decoder (one TCP direction).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecoderStats {
    /// Well-formed frames emitted.
    pub frames: u64,
    /// Bytes discarded while scanning for a valid header.
    pub skipped_bytes: u64,
    /// Distinct garbage runs survived (a run of skipped bytes between two
    /// in-sync stretches counts once, however long).
    pub resyncs: u64,
}

/// Incremental MBAP decoder for one TCP byte stream (see module docs).
#[derive(Debug, Default)]
pub struct MbapDecoder {
    /// Undecoded stream bytes; `[start..]` is live.
    buf: Vec<u8>,
    start: usize,
    /// Reusable RTU re-encapsulation buffer handed out via [`MbapFrame`].
    rtu: Vec<u8>,
    stats: DecoderStats,
    in_garbage: bool,
}

impl MbapDecoder {
    /// A decoder with empty buffers.
    pub fn new() -> Self {
        MbapDecoder::default()
    }

    /// Appends raw stream bytes (one TCP segment's payload, or any other
    /// slicing — framing never depends on segment boundaries).
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: steady-state traffic recirculates the
        // same buffer span instead of creeping forward forever.
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame out of the pending bytes, skipping
    /// garbage as needed. `None` means more bytes are required.
    pub fn next_frame(&mut self) -> Option<MbapFrame<'_>> {
        loop {
            let pending = &self.buf[self.start..];
            if pending.len() < MBAP_HEADER_LEN {
                return None;
            }
            let transaction = u16::from_be_bytes([pending[0], pending[1]]);
            let protocol = u16::from_be_bytes([pending[2], pending[3]]);
            let length = usize::from(u16::from_be_bytes([pending[4], pending[5]]));
            if protocol != 0 || !(2..=MBAP_MAX_LENGTH_FIELD).contains(&length) {
                // Out of sync: drop one byte and rescan.
                self.start += 1;
                self.stats.skipped_bytes += 1;
                if !self.in_garbage {
                    self.in_garbage = true;
                    self.stats.resyncs += 1;
                }
                continue;
            }
            let frame_len = 6 + length;
            if pending.len() < frame_len {
                return None;
            }
            let unit = pending[6];
            let pdu = &pending[MBAP_HEADER_LEN..frame_len];
            self.rtu.clear();
            self.rtu.push(unit);
            self.rtu.extend_from_slice(pdu);
            let crc = crc16(&self.rtu);
            self.rtu.extend_from_slice(&crc.to_le_bytes());
            self.start += frame_len;
            self.stats.frames += 1;
            self.in_garbage = false;
            return Some(MbapFrame {
                transaction,
                unit,
                adu: &self.rtu,
            });
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Bytes buffered but not yet decoded (an incomplete trailing frame).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbap(txn: u16, unit: u8, pdu: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&txn.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&((pdu.len() + 1) as u16).to_be_bytes());
        out.push(unit);
        out.extend_from_slice(pdu);
        out
    }

    fn rtu(unit: u8, pdu: &[u8]) -> Vec<u8> {
        let mut adu = Vec::new();
        adu.push(unit);
        adu.extend_from_slice(pdu);
        let crc = crc16(&adu);
        adu.extend_from_slice(&crc.to_le_bytes());
        adu
    }

    #[test]
    fn whole_frame_round_trips_to_rtu() {
        let mut dec = MbapDecoder::new();
        dec.push(&mbap(7, 4, &[0x03, 0x00, 0x2A]));
        let frame = dec.next_frame().expect("complete frame");
        assert_eq!(frame.transaction, 7);
        assert_eq!(frame.unit, 4);
        assert_eq!(frame.adu, rtu(4, &[0x03, 0x00, 0x2A]));
        assert!(dec.next_frame().is_none());
        assert_eq!(dec.stats().frames, 1);
        assert_eq!(dec.stats().skipped_bytes, 0);
    }

    #[test]
    fn framing_survives_any_segmentation() {
        let mut stream = Vec::new();
        for i in 0..20u16 {
            stream.extend_from_slice(&mbap(i, (i % 5) as u8 + 1, &[0x03, i as u8, 0x2A]));
        }
        // Re-deliver the same stream at every chunk size, including 1.
        for chunk in 1..=17 {
            let mut dec = MbapDecoder::new();
            let mut seen = Vec::new();
            for segment in stream.chunks(chunk) {
                dec.push(segment);
                while let Some(frame) = dec.next_frame() {
                    seen.push(frame.transaction);
                }
            }
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "chunk={chunk}");
            assert_eq!(dec.stats().skipped_bytes, 0);
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn garbage_is_skipped_and_counted_then_decoding_resumes() {
        let mut dec = MbapDecoder::new();
        // Protocol id 0xFFFF everywhere: pure garbage.
        let garbage = [0xFFu8; 23];
        dec.push(&garbage);
        dec.push(&mbap(3, 9, &[0x10, 0x01]));
        let frame = dec.next_frame().expect("frame after garbage");
        assert_eq!(frame.transaction, 3);
        let stats = dec.stats();
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.skipped_bytes, garbage.len() as u64);
        assert_eq!(stats.resyncs, 1);
    }

    #[test]
    fn oversized_length_field_forces_resync() {
        let mut raw = mbap(1, 2, &[0x03]);
        // Corrupt the length field beyond the RTU maximum.
        raw[4] = 0xFF;
        raw[5] = 0xFF;
        let mut dec = MbapDecoder::new();
        dec.push(&raw);
        dec.push(&mbap(2, 2, &[0x03]));
        let frame = dec.next_frame().expect("recovers on next frame");
        assert_eq!(frame.transaction, 2);
        assert!(dec.stats().skipped_bytes > 0);
    }

    #[test]
    fn rtu_buffer_is_reused_across_frames() {
        let mut dec = MbapDecoder::new();
        dec.push(&mbap(1, 1, &[0x03, 0xAA]));
        let first = dec.next_frame().expect("first").adu.as_ptr();
        dec.push(&mbap(2, 1, &[0x03, 0xBB]));
        let second = dec.next_frame().expect("second").adu.as_ptr();
        assert_eq!(first, second, "re-encapsulation buffer must be reused");
    }
}
