//! Diagnostic: where does validation top-k error come from?

use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::timeseries::{TimeSeriesDetector, TimeSeriesTrainingConfig};
use icsad_dataset::{DatasetConfig, GasPipelineDataset};
use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};

fn main() {
    combined_probe();

    for (total, hidden, epochs, lr) in [
        (30_000usize, 64usize, 40usize, 1e-2f32),
        (30_000, 96, 30, 1e-2),
        (60_000, 64, 30, 1e-2),
    ] {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed: 6,
            attack_probability: 0.05,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let disc = Discretizer::fit(
            &DiscretizationConfig::paper_defaults(),
            split.train().records(),
        )
        .unwrap();
        let vocab = SignatureVocabulary::build(&disc, split.train().records());
        let oov = split
            .validation()
            .records()
            .iter()
            .filter(|r| vocab.id_of(&disc.signature(r)).is_none())
            .count();
        let t0 = std::time::Instant::now();
        let (det, stats) = TimeSeriesDetector::train(
            &disc,
            &vocab,
            split.train(),
            &TimeSeriesTrainingConfig {
                hidden_dims: vec![hidden],
                epochs,
                learning_rate: lr,
                noise: None,
                seed: 3,
                ..TimeSeriesTrainingConfig::default()
            },
        )
        .unwrap();
        let train_time = t0.elapsed();
        let curve = det.top_k_error_curve(split.validation(), 8);
        let last = stats.last().unwrap();
        println!(
            "total={total} hidden={hidden} epochs={epochs} |S|={} oov={:.3} train_acc={:.3} loss={:.3} curve={:?} ({train_time:?})",
            vocab.len(),
            oov as f64 / split.validation().len() as f64,
            last.accuracy,
            last.mean_loss,
            curve.iter().map(|e| (e * 1000.0).round() / 1000.0).collect::<Vec<_>>(),
        );
    }
}

fn combined_probe() {
    // One probe point by default; add entries to sweep.
    let probe_points = [(150_000usize, 64usize, 20usize)];
    for (total, hidden, epochs) in probe_points {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed: 4,
            attack_probability: 0.08,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let mut config = ExperimentConfig::default();
        config.timeseries.hidden_dims = vec![hidden];
        config.timeseries.epochs = epochs;
        config.timeseries.learning_rate = 1e-2;
        let t0 = std::time::Instant::now();
        let trained = train_framework(&split, &config).unwrap();
        let report = trained.evaluate(split.test());
        let pkg_only = trained.detector.evaluate_package_level_only(split.test());
        println!(
            "COMBINED total={total} hidden={hidden} epochs={epochs} k={} |S|={} P={:.3} R={:.3} A={:.3} F1={:.3} pkgP={:.3} pkgR={:.3} curve={:?} ({:?})",
            trained.chosen_k,
            trained.signature_count,
            report.precision(), report.recall(), report.accuracy(), report.f1_score(),
            pkg_only.precision(), pkg_only.recall(),
            trained.validation_topk_curve.iter().map(|e| (e*1000.0).round()/1000.0).collect::<Vec<_>>(),
            t0.elapsed(),
        );
    }
}
