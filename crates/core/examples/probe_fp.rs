//! Diagnostic: where do package-level (Bloom) false positives on normal
//! test traffic come from?

use icsad_core::package::PackageLevelDetector;
use icsad_dataset::{DatasetConfig, GasPipelineDataset};
use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};

fn main() {
    let data = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 150_000,
        seed: 7,
        attack_probability: 0.08,
        ..DatasetConfig::default()
    });
    let split = data.split_chronological(0.6, 0.2);
    let disc = Discretizer::fit(
        &DiscretizationConfig::paper_defaults(),
        split.train().records(),
    )
    .unwrap();
    let vocab = SignatureVocabulary::build(&disc, split.train().records());
    let det = PackageLevelDetector::train(&disc, &vocab, 0.001).unwrap();
    let cards = disc.cardinalities();

    let mut normals = 0usize;
    let mut fps = 0usize;
    let mut fp_near_attack = 0usize; // within 8 packages after an attack
    let mut sentinel_counts = [0usize; 13];
    let mut last_attack_idx: Option<usize> = None;

    let names = [
        "address", "function", "length", "cmdresp", "time_int", "crc_rate", "setpoint", "pressure",
        "pid", "mode", "scheme", "pump", "solenoid",
    ];

    for (i, r) in split.test().iter().enumerate() {
        if r.is_attack() {
            last_attack_idx = Some(i);
            continue;
        }
        normals += 1;
        if !det.is_anomalous(r) {
            continue;
        }
        fps += 1;
        if let Some(a) = last_attack_idx {
            if i - a <= 8 {
                fp_near_attack += 1;
            }
        }
        let v = disc.discretize(r);
        for (f, &cat) in v.iter().enumerate() {
            // sentinel categories sit at the top of each feature's range
            // (out-of-range / unknown); absent is the final slot.
            let card = cards[f];
            let is_payload = (6..=12).contains(&f);
            let sentinel = if is_payload { card - 2 } else { card - 1 };
            let hit_sentinel = (cat as usize >= sentinel && cat as usize != card - 1)
                || (!is_payload && cat as usize == card - 1);
            if hit_sentinel {
                sentinel_counts[f] += 1;
            }
        }
    }
    println!(
        "test normals {normals}, bloom FPs {fps} ({:.2}%), of which within 8 pkgs after an attack: {} ({:.1}%)",
        100.0 * fps as f64 / normals as f64,
        fp_near_attack,
        100.0 * fp_near_attack as f64 / fps.max(1) as f64
    );
    println!("sentinel (out-of-range/unknown) feature hits among FPs:");
    for (n, c) in names.iter().zip(sentinel_counts.iter()) {
        if *c > 0 {
            println!("  {n:<9} {c}");
        }
    }
}
