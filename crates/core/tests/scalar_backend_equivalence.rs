//! End-to-end kernel-backend equivalence: a full `classify_batch` /
//! `classify_streams` run with the SIMD kernels forced to the **scalar**
//! backend must reproduce the auto-dispatched run bit-for-bit, as long as
//! the FMA policy matches (the policy travels with the dispatched
//! selection, not with the compile-time target features).
//!
//! This is the whole-stack version of the per-kernel parity proptests in
//! `icsad-simd`: discretization → one-hot encoding → stacked LSTM →
//! logits top-k, across multiple streams and batch shapes.
//!
//! The test flips the process-wide kernel selection, so it deliberately
//! lives alone in its own integration-test binary (tests in one binary
//! share the process).

use icsad_core::combined::DetectionLevel;
use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::timeseries::TimeSeriesTrainingConfig;
use icsad_dataset::{DatasetConfig, GasPipelineDataset, Record};
use icsad_simd::{Backend, Selection};

#[test]
fn forced_scalar_backend_reproduces_auto_dispatch_bitwise() {
    let auto_sel = icsad_simd::current();

    // Train on the auto backend (training numerics are not the contract
    // here; the trained weights are just a realistic fixture).
    let data = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 6_000,
        seed: 77,
        attack_probability: 0.08,
        ..DatasetConfig::default()
    });
    let split = data.split_chronological(0.6, 0.2);
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![24, 24],
                epochs: 1,
                seed: 77,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )
    .unwrap();
    let detector = trained.detector;

    // Split the capture into uneven streams so classify_streams exercises
    // ragged batch shapes (lanes drop out as short streams end).
    let records = split.test();
    let mut streams: Vec<Vec<Record>> = vec![Vec::new(); 5];
    for (i, r) in records.iter().enumerate() {
        streams[(i * i) % 5].push(r.clone());
    }
    let views: Vec<&[Record]> = streams.iter().map(|s| s.as_slice()).collect();

    let run = || -> (Vec<Vec<DetectionLevel>>, Vec<Vec<f32>>) {
        let levels = detector.classify_streams(&views);
        // Also pin raw softmax outputs of the underlying model on a
        // deterministic synthetic stream: stronger than decisions alone.
        let model = detector.time_series_level().model();
        let dim = model.config().input_dim;
        let nc = model.num_classes();
        let mut state = model.new_state();
        let mut probs_t = vec![0.0f32; nc];
        let mut probs = Vec::new();
        for t in 0..50usize {
            let x: Vec<f32> = (0..dim)
                .map(|i| match (i + t) % 7 {
                    0 => 1.0,
                    1 | 2 => 0.0,
                    _ => (((i * 13 + t * 7) % 19) as f32 - 9.0) / 5.0,
                })
                .collect();
            model.step(&mut state, &x, &mut probs_t);
            probs.push(probs_t.clone());
        }
        (levels, probs)
    };

    let (auto_levels, auto_probs) = run();

    // Force the scalar backend *with the same FMA policy* the auto
    // dispatch used — the equivalence contract is per policy.
    let forced = icsad_simd::force(Selection {
        backend: Backend::Scalar,
        fma: auto_sel.fma,
    });
    assert_eq!(forced.backend, Backend::Scalar);
    assert_eq!(forced.fma, auto_sel.fma);
    let (scalar_levels, scalar_probs) = run();
    icsad_simd::reset();
    assert_eq!(icsad_simd::current(), auto_sel);

    assert_eq!(
        auto_levels,
        scalar_levels,
        "decisions diverge between {} and {}",
        auto_sel.label(),
        forced.label()
    );
    for (t, (a, s)) in auto_probs.iter().zip(scalar_probs.iter()).enumerate() {
        for (i, (pa, ps)) in a.iter().zip(s.iter()).enumerate() {
            assert_eq!(
                pa.to_bits(),
                ps.to_bits(),
                "probability bits diverge at step {t}, class {i}: {pa} vs {ps}"
            );
        }
    }
}
