//! Property tests: the batched classification path produces exactly the
//! same `DetectionLevel` sequences as the per-record streaming path.

use std::sync::OnceLock;

use icsad_core::combined::{CombinedDetector, DetectionLevel};
use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::timeseries::TimeSeriesTrainingConfig;
use icsad_core::{DynamicKConfig, DynamicKController};
use icsad_dataset::{DatasetConfig, GasPipelineDataset, Record};
use proptest::prelude::*;

struct Fixture {
    detector: CombinedDetector,
    test_records: Vec<Record>,
}

/// One trained framework shared by all cases (training dominates runtime).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 8_000,
            seed: 42,
            attack_probability: 0.08,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let trained = train_framework(
            &split,
            &ExperimentConfig {
                timeseries: TimeSeriesTrainingConfig {
                    hidden_dims: vec![16],
                    epochs: 2,
                    seed: 42,
                    ..TimeSeriesTrainingConfig::default()
                },
                ..ExperimentConfig::default()
            },
        )
        .unwrap();
        Fixture {
            detector: trained.detector,
            test_records: split.test().to_vec(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `classify_streams` over a random partition of the capture into up
    /// to six streams equals a per-record `classify` loop on each stream.
    #[test]
    fn classify_batch_equals_per_record_loop(
        num_streams in 1usize..6,
        offset in 0usize..400,
        len in 10usize..600,
        stride_salt in any::<u64>(),
    ) {
        let fx = fixture();
        let records = &fx.test_records;
        let end = (offset + len).min(records.len());
        let window = &records[offset.min(end)..end];

        // Deal the window round-robin (with a salted starting stream) into
        // chronological per-stream substreams.
        let mut streams: Vec<Vec<Record>> = vec![Vec::new(); num_streams];
        for (i, r) in window.iter().enumerate() {
            streams[(i + stride_salt as usize) % num_streams].push(r.clone());
        }
        let views: Vec<&[Record]> = streams.iter().map(|s| s.as_slice()).collect();

        let batched = fx.detector.classify_streams(&views);

        for (stream, batch_levels) in views.iter().zip(batched.iter()) {
            let mut state = fx.detector.begin();
            let reference: Vec<DetectionLevel> = stream
                .iter()
                .map(|r| fx.detector.classify(&mut state, r))
                .collect();
            prop_assert_eq!(batch_levels, &reference);
        }
    }

    /// `classify_batch_adaptive` over interleaved multi-PLC lanes (uneven
    /// lengths, so later rounds carry fewer lanes) equals a per-record
    /// `classify_adaptive` loop with one controller per stream — decisions
    /// *and* each controller's final k.
    #[test]
    fn classify_batch_adaptive_equals_per_record_adaptive_loop(
        num_streams in 1usize..6,
        offset in 0usize..400,
        len in 10usize..600,
        stride_salt in any::<u64>(),
        window in 16usize..128,
        max_k in 2usize..12,
    ) {
        let fx = fixture();
        let records = &fx.test_records;
        let end = (offset + len).min(records.len());
        let window_slice = &records[offset.min(end)..end];
        let config = DynamicKConfig {
            min_k: 1,
            max_k,
            window,
            theta: 0.05,
        };

        // Deal round-robin with a salted start, then truncate streams to
        // different lengths so lanes drop out of later batches.
        let mut streams: Vec<Vec<Record>> = vec![Vec::new(); num_streams];
        for (i, r) in window_slice.iter().enumerate() {
            streams[(i + stride_salt as usize) % num_streams].push(r.clone());
        }
        for (lane, stream) in streams.iter_mut().enumerate() {
            let keep = stream.len() - (lane * stream.len() / (2 * num_streams)).min(stream.len());
            stream.truncate(keep);
        }

        // Batched: one controller per lane, lockstep rounds.
        let mut batch = fx.detector.begin_batch();
        let mut controllers: Vec<DynamicKController> = Vec::new();
        for _ in 0..num_streams {
            fx.detector.add_lane(&mut batch);
            controllers.push(DynamicKController::new(fx.detector.k(), config));
        }
        let mut batched: Vec<Vec<DetectionLevel>> = vec![Vec::new(); num_streams];
        let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut lanes = Vec::new();
        let mut round = Vec::new();
        let mut out = Vec::new();
        for t in 0..max_len {
            lanes.clear();
            round.clear();
            out.clear();
            for (lane, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    round.push(r.clone());
                }
            }
            fx.detector
                .classify_batch_adaptive(&mut batch, &lanes, &round, &mut controllers, &mut out);
            for (&lane, &level) in lanes.iter().zip(out.iter()) {
                batched[lane].push(level);
            }
        }

        // Reference: independent per-record adaptive loops.
        for (lane, stream) in streams.iter().enumerate() {
            let mut state = fx.detector.begin();
            let mut controller = DynamicKController::new(fx.detector.k(), config);
            let reference: Vec<DetectionLevel> = stream
                .iter()
                .map(|r| fx.detector.classify_adaptive(&mut state, &mut controller, r))
                .collect();
            prop_assert_eq!(&batched[lane], &reference);
            prop_assert_eq!(controllers[lane].k(), controller.k());
            prop_assert_eq!(controllers[lane].observations(), controller.observations());
        }
    }
}
