//! Commissioning-artifact properties: a round-tripped detector makes
//! bit-identical decisions, and every corrupted artifact yields a typed
//! `ArtifactError` instead of a panic.

use std::sync::OnceLock;

use icsad_core::artifact::{ArtifactError, ARTIFACT_VERSION};
use icsad_core::combined::{CombinedDetector, DetectionLevel};
use icsad_core::experiment::{train_framework, ExperimentConfig};
use icsad_core::timeseries::TimeSeriesTrainingConfig;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};
use icsad_dataset::{DatasetConfig, GasPipelineDataset, Record};
use icsad_simulator::{TrafficConfig, TrafficGenerator};
use proptest::prelude::*;

struct Fixture {
    detector: CombinedDetector,
    artifact: Vec<u8>,
    /// Per-PLC record streams of a seeded multi-PLC capture (attacks on).
    streams: Vec<Vec<Record>>,
}

/// One trained framework shared by every test (training dominates runtime).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 8_000,
            seed: 2024,
            attack_probability: 0.0,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.7, 0.2);
        let trained = train_framework(
            &split,
            &ExperimentConfig {
                timeseries: TimeSeriesTrainingConfig {
                    hidden_dims: vec![16],
                    epochs: 2,
                    seed: 2024,
                    ..TimeSeriesTrainingConfig::default()
                },
                ..ExperimentConfig::default()
            },
        )
        .unwrap();

        // A fresh multi-PLC capture with live attacks, one record stream
        // per unit (per-stream extraction keeps intervals and CRC windows
        // honest).
        let streams: Vec<Vec<Record>> = (0..4u8)
            .map(|plc| {
                let mut generator = TrafficGenerator::new(TrafficConfig {
                    seed: 7_000 + u64::from(plc),
                    slave_address: plc + 4,
                    attack_probability: 0.06,
                    ..TrafficConfig::default()
                });
                let packets = generator.generate(600);
                extract_records(&packets, DEFAULT_CRC_WINDOW)
            })
            .collect();

        let artifact = trained.detector.to_bytes();
        Fixture {
            detector: trained.detector,
            artifact,
            streams,
        }
    })
}

/// CRC-32 (IEEE) — reimplemented here so tests can *re-seal* deliberately
/// corrupted artifacts and reach the decoders behind the checksum.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Recomputes the trailing checksum after a test mutated artifact bytes.
fn reseal(bytes: &mut [u8]) {
    let crc_at = bytes.len() - 4;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
}

/// Byte offsets of every section boundary: header end, each payload end.
fn section_boundaries(artifact: &[u8]) -> Vec<usize> {
    let count = usize::from(u16::from_le_bytes([artifact[6], artifact[7]]));
    let mut at = 8 + count * 12;
    let mut boundaries = vec![at];
    for i in 0..count {
        let entry = 8 + i * 12;
        let len = u64::from_le_bytes(artifact[entry + 4..entry + 12].try_into().unwrap());
        at += usize::try_from(len).unwrap();
        boundaries.push(at);
    }
    boundaries
}

/// Rebuilds the artifact with section `index`'s payload replaced (table
/// length updated, checksum resealed) — a structurally valid artifact
/// whose sections may now contradict each other.
fn replace_section(artifact: &[u8], index: usize, payload: &[u8]) -> Vec<u8> {
    let count = usize::from(u16::from_le_bytes([artifact[6], artifact[7]]));
    let boundaries = section_boundaries(artifact);
    let mut out = Vec::new();
    out.extend_from_slice(&artifact[..8]);
    for i in 0..count {
        let at = 8 + i * 12;
        out.extend_from_slice(&artifact[at..at + 4]);
        if i == index {
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        } else {
            out.extend_from_slice(&artifact[at + 4..at + 12]);
        }
    }
    for i in 0..count {
        if i == index {
            out.extend_from_slice(payload);
        } else {
            out.extend_from_slice(&artifact[boundaries[i]..boundaries[i + 1]]);
        }
    }
    out.extend_from_slice(&[0u8; 4]);
    reseal(&mut out);
    out
}

#[test]
fn swapped_bloom_section_is_rejected_as_inconsistent() {
    let fx = fixture();
    // A valid Bloom filter from a *different* (smaller) signature database,
    // spliced in as the BLOM section (index 2) and resealed: every section
    // decodes, but the filter contradicts the vocabulary.
    let mut foreign = icsad_bloom::BloomFilter::with_capacity(3, 0.01).unwrap();
    for sig in ["1~2", "3~4", "5~6"] {
        foreign.insert(sig);
    }
    let bytes = replace_section(&fx.artifact, 2, &foreign.to_bytes());
    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::Inconsistent { .. })
    ));
}

#[test]
fn implausible_section_count_is_rejected_before_any_table_walk() {
    // Magic and version intact, count = u16::MAX: rejected by the section
    // cap (no quadratic duplicate scan, no checksum pass over the body).
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"ICSA");
    bytes.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&u16::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::Inconsistent { .. })
    ));
}

#[test]
fn round_trip_decisions_are_bit_identical_on_a_multi_plc_capture() {
    let fx = fixture();
    let restored = CombinedDetector::from_bytes(&fx.artifact).unwrap();
    assert_eq!(restored.k(), fx.detector.k());
    assert_eq!(restored.memory_bytes(), fx.detector.memory_bytes());

    // Per-record streaming path, every stream.
    let mut saw_every_level = [false; 3];
    for stream in &fx.streams {
        let original = fx.detector.classify_stream(stream);
        let reloaded = restored.classify_stream(stream);
        assert_eq!(original, reloaded);
        for level in &original {
            saw_every_level[match level {
                DetectionLevel::Normal => 0,
                DetectionLevel::PackageLevel => 1,
                DetectionLevel::TimeSeriesLevel => 2,
            }] = true;
        }
    }
    assert!(
        saw_every_level.iter().all(|&s| s),
        "capture should exercise all three decision levels: {saw_every_level:?}"
    );

    // Batched lockstep path across all streams at once.
    let views: Vec<&[Record]> = fx.streams.iter().map(|s| s.as_slice()).collect();
    assert_eq!(
        restored.classify_streams(&views),
        fx.detector.classify_streams(&views)
    );
}

#[test]
#[should_panic(expected = "share one discretizer")]
fn serializing_mismatched_discretizers_panics_instead_of_lossy_encoding() {
    use icsad_core::PackageLevelDetector;
    use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};

    let fx = fixture();
    // A package level fitted with a *different* granularity than the
    // fixture's time-series level: storing only one discretizer would
    // silently change the reloaded detector's decisions.
    let data = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 2_000,
        seed: 5,
        attack_probability: 0.0,
        ..DatasetConfig::default()
    });
    let config = DiscretizationConfig {
        pressure_bins: 5,
        ..DiscretizationConfig::paper_defaults()
    };
    let disc = Discretizer::fit(&config, data.records()).unwrap();
    let vocab = SignatureVocabulary::build(&disc, data.records());
    let package = PackageLevelDetector::train(&disc, &vocab, 0.001).unwrap();
    let franken = CombinedDetector::new(package, fx.detector.time_series_level().clone());
    let _ = franken.to_bytes();
}

#[test]
fn encoding_is_canonical() {
    let fx = fixture();
    let restored = CombinedDetector::from_bytes(&fx.artifact).unwrap();
    assert_eq!(restored.to_bytes(), fx.artifact);
}

#[test]
fn save_load_file_round_trip() {
    let fx = fixture();
    let path = std::env::temp_dir().join(format!("icsad-artifact-{}.icsa", std::process::id()));
    fx.detector.save(&path).unwrap();
    let loaded = CombinedDetector::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.to_bytes(), fx.artifact);
    assert!(matches!(
        CombinedDetector::load("/nonexistent/detector.icsa"),
        Err(ArtifactError::Io(_))
    ));
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let fx = fixture();
    for cut in 0..fx.artifact.len() {
        match CombinedDetector::from_bytes(&fx.artifact[..cut]) {
            Err(ArtifactError::Truncated) | Err(ArtifactError::BadMagic) => {}
            other => panic!("truncation at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn truncation_at_every_section_boundary_is_truncated() {
    let fx = fixture();
    for &boundary in &section_boundaries(&fx.artifact) {
        assert!(
            matches!(
                CombinedDetector::from_bytes(&fx.artifact[..boundary]),
                Err(ArtifactError::Truncated)
            ),
            "cut at section boundary {boundary}"
        );
    }
}

#[test]
fn flipped_magic_and_version_bytes_are_rejected() {
    let fx = fixture();
    for at in 0..4 {
        let mut bytes = fx.artifact.clone();
        bytes[at] ^= 0xFF;
        assert!(matches!(
            CombinedDetector::from_bytes(&bytes),
            Err(ArtifactError::BadMagic)
        ));
    }
    for at in 4..6 {
        let mut bytes = fx.artifact.clone();
        bytes[at] ^= 0xFF;
        let result = CombinedDetector::from_bytes(&bytes);
        assert!(
            matches!(result, Err(ArtifactError::UnsupportedVersion(v)) if v != ARTIFACT_VERSION),
            "version flip at {at}: {result:?}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let fx = fixture();
    for extra in [1usize, 4, 1024] {
        let mut bytes = fx.artifact.clone();
        bytes.extend(std::iter::repeat_n(0xA5u8, extra));
        assert!(matches!(
            CombinedDetector::from_bytes(&bytes),
            Err(ArtifactError::TrailingData)
        ));
    }
}

#[test]
fn payload_corruption_fails_the_checksum() {
    let fx = fixture();
    let boundaries = section_boundaries(&fx.artifact);
    // Flip one byte inside each section payload (first byte after the
    // section's start boundary).
    for window in boundaries.windows(2) {
        let mut bytes = fx.artifact.clone();
        bytes[window[0]] ^= 0x01;
        assert!(matches!(
            CombinedDetector::from_bytes(&bytes),
            Err(ArtifactError::ChecksumMismatch)
        ));
    }
}

#[test]
fn missing_section_is_reported_behind_a_valid_checksum() {
    let fx = fixture();
    // Rename the DISC tag so the section table no longer offers it, then
    // re-seal the checksum so the decoder actually reaches section lookup.
    let mut bytes = fx.artifact.clone();
    assert_eq!(&bytes[8..12], b"DISC");
    bytes[8..12].copy_from_slice(b"XXXX");
    reseal(&mut bytes);
    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::MissingSection("DISC"))
    ));
}

#[test]
fn corrupt_section_payload_is_reported_behind_a_valid_checksum() {
    let fx = fixture();
    let boundaries = section_boundaries(&fx.artifact);
    // Section order is DISC, VOCB, BLOM, LSTM, HYPR; zero the first byte
    // of the LSTM payload (its "LSTM" model magic) and re-seal.
    let lstm_start = boundaries[3];
    let mut bytes = fx.artifact.clone();
    assert_eq!(bytes[lstm_start], b'L');
    bytes[lstm_start] = b'X';
    reseal(&mut bytes);
    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::SectionCorrupt { section: "LSTM" })
    ));
}

#[test]
fn duplicate_sections_are_rejected_behind_a_valid_checksum() {
    let fx = fixture();
    let artifact = &fx.artifact;
    let count = usize::from(u16::from_le_bytes([artifact[6], artifact[7]]));
    let header_len = 8 + count * 12;
    let boundaries = section_boundaries(artifact);
    let disc_payload = &artifact[boundaries[0]..boundaries[1]];
    let disc_entry = &artifact[8..20]; // first table entry: DISC tag + len

    // Rebuild the artifact with a second DISC section appended (table
    // entry + payload), bump the count, and re-seal the checksum: a
    // structurally valid artifact whose sections contradict each other.
    let mut bytes = Vec::with_capacity(artifact.len() + 12 + disc_payload.len());
    bytes.extend_from_slice(&artifact[..6]);
    bytes.extend_from_slice(&(count as u16 + 1).to_le_bytes());
    bytes.extend_from_slice(&artifact[8..header_len]);
    bytes.extend_from_slice(disc_entry);
    bytes.extend_from_slice(&artifact[header_len..artifact.len() - 4]);
    bytes.extend_from_slice(disc_payload);
    bytes.extend_from_slice(&[0u8; 4]);
    reseal(&mut bytes);

    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::Inconsistent { .. })
    ));
}

#[test]
fn inconsistent_sections_are_reported_behind_a_valid_checksum() {
    let fx = fixture();
    let boundaries = section_boundaries(&fx.artifact);
    // k = 0 in the HYPR section decodes but violates the framework's
    // invariants; the loader must refuse rather than build a detector
    // that panics later.
    let hypr_start = boundaries[4];
    let mut bytes = fx.artifact.clone();
    bytes[hypr_start..hypr_start + 8].copy_from_slice(&0u64.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(
        CombinedDetector::from_bytes(&bytes),
        Err(ArtifactError::Inconsistent { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption anywhere in the artifact yields a typed
    /// error — never a panic, never a silently different detector.
    #[test]
    fn any_single_byte_corruption_is_a_typed_error(
        at_salt in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let fx = fixture();
        let at = at_salt % fx.artifact.len();
        let mut bytes = fx.artifact.clone();
        bytes[at] ^= flip;
        prop_assert!(CombinedDetector::from_bytes(&bytes).is_err());
    }

    /// Random truncations and random trailing extensions both fail with a
    /// typed error.
    #[test]
    fn random_resizes_are_typed_errors(
        cut_salt in any::<usize>(),
        extend in 1usize..64,
    ) {
        let fx = fixture();
        let cut = cut_salt % fx.artifact.len();
        prop_assert!(CombinedDetector::from_bytes(&fx.artifact[..cut]).is_err());
        let mut longer = fx.artifact.clone();
        longer.extend(std::iter::repeat_n(0u8, extend));
        prop_assert!(CombinedDetector::from_bytes(&longer).is_err());
    }
}
