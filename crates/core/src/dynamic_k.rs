//! Dynamic adjustment of the top-`k` parameter during detection — the
//! extension the paper names as future work (§VIII-D, §IX: "allow the value
//! of k for time-series level anomaly detection to be adjusted dynamically
//! during the detection phase ... given previous predictions").
//!
//! The mechanism implemented here is rank tracking: for every package the
//! detector accepts as normal, record the *rank* of its true signature in
//! the model's prediction. If the model has recently been predicting
//! sharply (true signatures near the top), `k` can shrink and the detector
//! gains sensitivity; if predictions have been diffuse (legitimate drift,
//! noisy process), `k` grows to hold the false-positive budget. The rule is
//!
//! ```text
//! k_t = clamp(quantile_{1-θ}(recent accepted ranks) , k_min, k_max)
//! ```
//!
//! which directly estimates the smallest `k` whose false-positive rate on
//! recent normal-looking traffic is below θ — the same rule the static
//! choice-of-`k` applies to the validation set, made rolling.

use std::collections::VecDeque;

/// Configuration for the dynamic-`k` controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicKConfig {
    /// Smallest `k` the controller may choose.
    pub min_k: usize,
    /// Largest `k` the controller may choose.
    pub max_k: usize,
    /// Sliding window of accepted-package ranks to estimate from.
    pub window: usize,
    /// The false-positive budget θ (as in the static choice of `k`).
    pub theta: f64,
}

impl Default for DynamicKConfig {
    fn default() -> Self {
        DynamicKConfig {
            min_k: 1,
            max_k: 10,
            window: 256,
            theta: 0.05,
        }
    }
}

/// Rolling estimator of the optimal `k` from recent prediction ranks.
#[derive(Debug, Clone)]
pub struct DynamicKController {
    config: DynamicKConfig,
    ranks: VecDeque<usize>,
    current_k: usize,
}

impl DynamicKController {
    /// Creates a controller starting at `initial_k`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`min_k == 0`,
    /// `min_k > max_k`, `window == 0`, or θ ∉ (0, 1)).
    pub fn new(initial_k: usize, config: DynamicKConfig) -> Self {
        assert!(config.min_k >= 1, "min_k must be positive");
        assert!(config.min_k <= config.max_k, "min_k must not exceed max_k");
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.theta > 0.0 && config.theta < 1.0,
            "theta must be in (0, 1)"
        );
        DynamicKController {
            config,
            ranks: VecDeque::with_capacity(config.window),
            current_k: initial_k.clamp(config.min_k, config.max_k),
        }
    }

    /// The `k` currently in force.
    pub fn k(&self) -> usize {
        self.current_k
    }

    /// The largest `k` the controller may choose; ranks above this bound
    /// are treated as anomalies and must not be fed to
    /// [`DynamicKController::observe_rank`].
    pub fn max_k(&self) -> usize {
        self.config.max_k
    }

    /// Number of rank observations currently in the window.
    pub fn observations(&self) -> usize {
        self.ranks.len()
    }

    /// Records the rank (1-based position in the sorted prediction) of an
    /// accepted package's true signature and returns the updated `k`.
    ///
    /// Ranks of packages *flagged* as anomalous must not be recorded —
    /// they would teach the controller to tolerate attacks. A rank above
    /// [`DynamicKController::max_k`] is by definition anomalous traffic, so
    /// feeding one is a contract violation: it panics in debug builds
    /// (`debug_assert`) and is ignored — the window and `k` stay unchanged
    /// — in release builds, where it would otherwise inflate the rolling
    /// quantile and pin `k` at `max_k`.
    pub fn observe_rank(&mut self, rank: usize) -> usize {
        debug_assert!(
            rank <= self.config.max_k,
            "rank {rank} exceeds max_k {}: anomalous ranks must not feed the controller",
            self.config.max_k
        );
        if rank > self.config.max_k {
            return self.current_k;
        }
        if self.ranks.len() == self.config.window {
            self.ranks.pop_front();
        }
        self.ranks.push_back(rank.max(1));
        // Re-estimate once enough evidence exists.
        if self.ranks.len() >= self.config.window / 4 {
            let mut sorted: Vec<usize> = self.ranks.iter().copied().collect();
            sorted.sort_unstable();
            let idx = (((sorted.len() as f64) * (1.0 - self.config.theta)).ceil() as usize)
                .min(sorted.len())
                .saturating_sub(1);
            self.current_k = sorted[idx].clamp(self.config.min_k, self.config.max_k);
        }
        self.current_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(window: usize, theta: f64) -> DynamicKController {
        DynamicKController::new(
            4,
            DynamicKConfig {
                min_k: 1,
                max_k: 10,
                window,
                theta,
            },
        )
    }

    #[test]
    fn starts_at_initial_k() {
        let c = controller(64, 0.05);
        assert_eq!(c.k(), 4);
        assert_eq!(c.observations(), 0);
    }

    #[test]
    fn sharp_predictions_shrink_k() {
        let mut c = controller(64, 0.05);
        for _ in 0..64 {
            c.observe_rank(1);
        }
        assert_eq!(c.k(), 1, "all-rank-1 history should drive k to 1");
    }

    #[test]
    fn diffuse_predictions_grow_k() {
        let mut c = controller(64, 0.05);
        for i in 0..64 {
            c.observe_rank(1 + (i % 8));
        }
        assert!(
            c.k() >= 7,
            "rank spread to 8 should push k up, got {}",
            c.k()
        );
    }

    #[test]
    fn k_respects_bounds() {
        let mut c = DynamicKController::new(
            5,
            DynamicKConfig {
                min_k: 3,
                max_k: 6,
                window: 32,
                theta: 0.05,
            },
        );
        for _ in 0..32 {
            c.observe_rank(1);
        }
        assert_eq!(c.k(), 3);
        // Diffuse-but-legal ranks (at the max_k bound) push k to its cap.
        for _ in 0..32 {
            c.observe_rank(6);
        }
        assert_eq!(c.k(), 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds max_k")]
    fn rank_above_max_k_panics_in_debug() {
        // Regression: ranks above max_k used to be accepted silently,
        // inflating the rolling quantile with traffic the controller's own
        // contract excludes.
        controller(64, 0.05).observe_rank(11);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn rank_above_max_k_is_ignored_in_release() {
        // Regression twin of `rank_above_max_k_panics_in_debug` for
        // release builds: the out-of-contract observation must leave the
        // window and the current k untouched.
        let mut c = controller(64, 0.05);
        for _ in 0..64 {
            c.observe_rank(1);
        }
        assert_eq!(c.k(), 1);
        let before = c.observations();
        assert_eq!(c.observe_rank(11), 1);
        assert_eq!(c.k(), 1, "out-of-contract rank must not move k");
        assert_eq!(c.observations(), before);
    }

    #[test]
    fn theta_controls_the_quantile() {
        // With θ = 0.25, the 75th-percentile rank is chosen.
        let mut c = controller(100, 0.25);
        for i in 0..100 {
            // Ranks 1..=4 uniformly: 75th percentile = 3.
            c.observe_rank(1 + (i % 4));
        }
        assert_eq!(c.k(), 3);
    }

    #[test]
    fn window_bounds_memory() {
        let mut c = controller(16, 0.05);
        for _ in 0..100 {
            c.observe_rank(9);
        }
        assert_eq!(c.observations(), 16);
        // Old high ranks age out once sharp predictions dominate the window.
        for _ in 0..16 {
            c.observe_rank(1);
        }
        assert_eq!(c.k(), 1);
    }

    #[test]
    fn adapts_before_window_fills() {
        let mut c = controller(64, 0.05);
        for _ in 0..16 {
            c.observe_rank(2);
        }
        // window/4 = 16 observations suffice for the first estimate.
        assert_eq!(c.k(), 2);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        DynamicKController::new(
            4,
            DynamicKConfig {
                theta: 0.0,
                ..DynamicKConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "min_k")]
    fn invalid_bounds_panic() {
        DynamicKController::new(
            4,
            DynamicKConfig {
                min_k: 8,
                max_k: 2,
                ..DynamicKConfig::default()
            },
        );
    }
}
