//! Evaluation metrics (paper §VIII-B).

use icsad_simulator::AttackType;

/// Confusion-matrix counts for binary anomaly detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Anomalous packages correctly identified.
    pub tp: u64,
    /// Normal packages incorrectly classified as anomalies.
    pub fp: u64,
    /// Normal packages correctly identified.
    pub tn: u64,
    /// Anomalous packages incorrectly classified as normal.
    pub fn_: u64,
}

impl ConfusionCounts {
    /// Records one `(ground_truth_anomalous, predicted_anomalous)` pair.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds counts from parallel label/prediction iterators.
    ///
    /// # Panics
    ///
    /// Panics if the iterators have different lengths.
    pub fn from_pairs(
        actual: impl IntoIterator<Item = bool>,
        predicted: impl IntoIterator<Item = bool>,
    ) -> Self {
        let mut counts = ConfusionCounts::default();
        let mut a = actual.into_iter();
        let mut p = predicted.into_iter();
        loop {
            match (a.next(), p.next()) {
                (Some(x), Some(y)) => counts.record(x, y),
                (None, None) => break,
                // PANIC: caller contract — the two label streams come from
                // the same evaluation split, so unequal lengths are a bug in
                // the harness, not a data condition to tolerate.
                _ => panic!("actual/predicted length mismatch"),
            }
        }
        counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `TP / (TP + FP)`; 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; 0 when there are no actual anomalies.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `(TP + TN) / total`; 0 for an empty count.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Detected ratio (recall) per attack type (paper Table V).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerAttackRecall {
    detected: [u64; 7],
    total: [u64; 7],
}

impl PerAttackRecall {
    /// Records one attack package's outcome.
    pub fn record(&mut self, attack: AttackType, detected: bool) {
        let i = (attack.id() - 1) as usize;
        self.total[i] += 1;
        if detected {
            self.detected[i] += 1;
        }
    }

    /// Detected ratio for one attack type, or `None` if it never occurred.
    pub fn ratio(&self, attack: AttackType) -> Option<f64> {
        let i = (attack.id() - 1) as usize;
        if self.total[i] == 0 {
            None
        } else {
            Some(self.detected[i] as f64 / self.total[i] as f64)
        }
    }

    /// Number of packages seen for one attack type.
    pub fn count(&self, attack: AttackType) -> u64 {
        self.total[(attack.id() - 1) as usize]
    }

    /// Iterates `(attack, detected, total)` in Table II order.
    pub fn iter(&self) -> impl Iterator<Item = (AttackType, u64, u64)> + '_ {
        AttackType::ALL.iter().map(move |&ty| {
            (
                ty,
                self.detected[(ty.id() - 1) as usize],
                self.total[(ty.id() - 1) as usize],
            )
        })
    }
}

/// Episode-level alarm latency: how many packages into an attack episode
/// the first alarm fired.
///
/// The per-package views above score every package independently; an
/// operator cares about a coarser unit — a contiguous *episode* of attack
/// packages — and about two episode-level questions: was the episode
/// flagged at all (detection rate), and how deep into it did the first
/// alarm land (latency in packages). The adversarial scenario harness
/// accumulates one `record_episode` per labeled attack run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlarmLatency {
    episodes: u64,
    detected: u64,
    latency_packages: u64,
}

impl AlarmLatency {
    /// Records one episode. `first_alarm` is the 0-based index, **within
    /// the episode**, of the first package flagged anomalous — or `None`
    /// if the whole episode passed unflagged.
    pub fn record_episode(&mut self, first_alarm: Option<u64>) {
        self.episodes += 1;
        if let Some(latency) = first_alarm {
            self.detected += 1;
            self.latency_packages += latency;
        }
    }

    /// Episodes recorded so far.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Episodes with at least one alarm.
    pub fn detected(&self) -> u64 {
        self.detected
    }

    /// Fraction of episodes with at least one alarm, or `None` before any
    /// episode was recorded.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.episodes == 0 {
            None
        } else {
            Some(self.detected as f64 / self.episodes as f64)
        }
    }

    /// Mean packages-into-episode of the first alarm, over detected
    /// episodes only; `None` when nothing was detected.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.detected == 0 {
            None
        } else {
            Some(self.latency_packages as f64 / self.detected as f64)
        }
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &AlarmLatency) {
        self.episodes += other.episodes;
        self.detected += other.detected;
        self.latency_packages += other.latency_packages;
    }
}

/// A complete evaluation: confusion counts plus per-attack recall.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassificationReport {
    /// Binary confusion counts.
    pub confusion: ConfusionCounts,
    /// Per-attack-type detected ratios.
    pub per_attack: PerAttackRecall,
}

impl ClassificationReport {
    /// Records one sample.
    pub fn record(&mut self, label: Option<AttackType>, predicted: bool) {
        self.confusion.record(label.is_some(), predicted);
        if let Some(ty) = label {
            self.per_attack.record(ty, predicted);
        }
    }

    /// Folds another report into this one (used by the sharded engine to
    /// aggregate per-shard results).
    pub fn merge(&mut self, other: &ClassificationReport) {
        self.confusion.tp += other.confusion.tp;
        self.confusion.fp += other.confusion.fp;
        self.confusion.tn += other.confusion.tn;
        self.confusion.fn_ += other.confusion.fn_;
        for i in 0..7 {
            self.per_attack.detected[i] += other.per_attack.detected[i];
            self.per_attack.total[i] += other.per_attack.total[i];
        }
    }

    /// Precision (see [`ConfusionCounts::precision`]).
    pub fn precision(&self) -> f64 {
        self.confusion.precision()
    }

    /// Recall (see [`ConfusionCounts::recall`]).
    pub fn recall(&self) -> f64 {
        self.confusion.recall()
    }

    /// Accuracy (see [`ConfusionCounts::accuracy`]).
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// F1 score (see [`ConfusionCounts::f1_score`]).
    pub fn f1_score(&self) -> f64 {
        self.confusion.f1_score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_on_known_confusion() {
        let c = ConfusionCounts {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 13.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.93).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((c.f1_score() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1_score(), 0.0);
    }

    #[test]
    fn record_routes_to_quadrants() {
        let mut c = ConfusionCounts::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
    }

    #[test]
    fn from_pairs_matches_record() {
        let actual = vec![true, false, true, false];
        let predicted = vec![true, true, false, false];
        let c = ConfusionCounts::from_pairs(actual, predicted);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_pairs_length_mismatch_panics() {
        ConfusionCounts::from_pairs(vec![true], vec![true, false]);
    }

    #[test]
    fn per_attack_ratios() {
        let mut pa = PerAttackRecall::default();
        pa.record(AttackType::Dos, true);
        pa.record(AttackType::Dos, false);
        pa.record(AttackType::Mfci, true);
        assert_eq!(pa.ratio(AttackType::Dos), Some(0.5));
        assert_eq!(pa.ratio(AttackType::Mfci), Some(1.0));
        assert_eq!(pa.ratio(AttackType::Nmri), None);
        assert_eq!(pa.count(AttackType::Dos), 2);
        let rows: Vec<_> = pa.iter().collect();
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn alarm_latency_accumulates_per_episode() {
        let mut lat = AlarmLatency::default();
        assert_eq!(lat.detection_rate(), None);
        assert_eq!(lat.mean_latency(), None);
        lat.record_episode(Some(0)); // alarm on the first package
        lat.record_episode(Some(4));
        lat.record_episode(None); // missed episode
        assert_eq!(lat.episodes(), 3);
        assert_eq!(lat.detected(), 2);
        assert!((lat.detection_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((lat.mean_latency().unwrap() - 2.0).abs() < 1e-12);

        let mut other = AlarmLatency::default();
        other.record_episode(Some(2));
        lat.merge(&other);
        assert_eq!(lat.episodes(), 4);
        assert!((lat.mean_latency().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_combines_both_views() {
        let mut r = ClassificationReport::default();
        r.record(Some(AttackType::Nmri), true);
        r.record(Some(AttackType::Nmri), false);
        r.record(None, false);
        r.record(None, true);
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.fn_, 1);
        assert_eq!(r.confusion.fp, 1);
        assert_eq!(r.confusion.tn, 1);
        assert_eq!(r.per_attack.ratio(AttackType::Nmri), Some(0.5));
        assert_eq!(r.accuracy(), 0.5);
    }
}
