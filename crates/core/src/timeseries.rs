//! The time-series-level anomaly detector (paper §V): a stacked LSTM
//! softmax classifier over package signatures with a top-`k` decision rule.

use icsad_dataset::Fragments;
use icsad_features::encoding::{mutate_noise, OneHotEncoder};
use icsad_features::{DiscreteVector, Discretizer, SignatureVocabulary};
use icsad_nn::{
    loss, EpochStats, LstmClassifier, ModelConfig, Sequence, StreamState, Trainer, TrainingConfig,
};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::error::CoreError;

/// Probabilistic-noise training parameters (paper §V-3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// The λ of the selection rule `p = λ / (λ + #s)`: packages with rare
    /// signatures are more likely to be replaced by noisy versions.
    pub lambda: f64,
    /// Upper bound `l` on the number of mutated features per noisy package
    /// (`d` is drawn uniformly from `[1, l]`).
    pub max_features: usize,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            // The paper uses λ = 10 because its capture is unusually
            // attack-dense.
            lambda: 10.0,
            max_features: 4,
        }
    }
}

/// Training hyperparameters for the time-series detector.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesTrainingConfig {
    /// LSTM stack widths (paper: `[256, 256]`).
    pub hidden_dims: Vec<usize>,
    /// Training epochs (paper: 50).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Truncated-BPTT chunk length.
    pub chunk_len: usize,
    /// Chunks per optimizer step.
    pub batch_chunks: usize,
    /// Probabilistic-noise injection; `None` trains on clean sequences.
    pub noise: Option<NoiseConfig>,
    /// Default `k` before [`TimeSeriesDetector::choose_k`] runs.
    pub initial_k: usize,
    /// Worker threads (0 = auto).
    pub num_threads: usize,
    /// Seed for initialization, shuffling and noise sampling.
    pub seed: u64,
}

impl Default for TimeSeriesTrainingConfig {
    fn default() -> Self {
        TimeSeriesTrainingConfig {
            hidden_dims: vec![64, 64],
            epochs: 12,
            learning_rate: 5e-3,
            chunk_len: 32,
            batch_chunks: 32,
            noise: Some(NoiseConfig::default()),
            initial_k: 4,
            num_threads: 0,
            seed: 0,
        }
    }
}

impl TimeSeriesTrainingConfig {
    /// The architecture of the paper (2×256 LSTM, 50 epochs, λ=10).
    /// Substantially slower to train than the default.
    pub fn paper_scale() -> Self {
        TimeSeriesTrainingConfig {
            hidden_dims: vec![256, 256],
            epochs: 50,
            ..TimeSeriesTrainingConfig::default()
        }
    }
}

/// The stacked LSTM time-series detector.
///
/// Detection function (paper §V):
///
/// ```text
/// F_t(x | c_prev…) = 1  if s(x) ∉ S(k)  (top-k predicted signatures)
///                    0  otherwise
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeriesDetector {
    discretizer: Discretizer,
    vocabulary: SignatureVocabulary,
    encoder: OneHotEncoder,
    model: LstmClassifier,
    k: usize,
}

/// Streaming detection state: the LSTM state plus the rolling prediction
/// for the *next* package.
#[derive(Debug, Clone)]
pub struct TsState {
    stream: StreamState,
    /// Prediction scores for the next package's signature (raw logits —
    /// softmax is strictly monotone, so the top-`k` rank is the same and
    /// the hot path skips `|S|` exponentials per package); `None` until
    /// the first package has been observed.
    prediction: Option<Vec<f32>>,
    scratch: Vec<f32>,
    /// Reused one-hot input buffer for the single-lane step — allocated
    /// once in [`TimeSeriesDetector::begin`], rewritten in place every
    /// package so the streaming step never touches the allocator.
    x_buf: Vec<f32>,
}

impl TsState {
    /// A hollow placeholder (no LSTM layers, no prediction): what a batch
    /// lane slot holds while its real state is moved into a round
    /// partition. Never stepped — partitioned classification moves the
    /// real state back before the lane is touched again. Allocation-free.
    pub(crate) fn hollow() -> TsState {
        TsState {
            stream: StreamState::default(),
            prediction: None,
            scratch: Vec::new(),
            x_buf: Vec::new(),
        }
    }
}

/// Reusable buffers for [`TimeSeriesDetector::process_batch`]: the gathered
/// LSTM state blocks plus the batched one-hot input and probability blocks,
/// grown on demand.
#[derive(Debug, Clone)]
pub struct TsBatchScratch {
    nn: icsad_nn::BatchScratch,
    xs: Vec<f32>,
    probs: Vec<f32>,
}

impl TimeSeriesDetector {
    /// Trains the detector on anomaly-free training fragments.
    ///
    /// Returns the detector and per-epoch statistics. When noise injection
    /// is enabled, noisy variants of the sequences are re-sampled every
    /// epoch per §V-3: each package is replaced with probability
    /// `λ/(λ+#s)` by a mutated vector with its noise bit set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTrainingData`] if there are no usable
    /// fragments (each must have ≥ 2 packages).
    pub fn train(
        discretizer: &Discretizer,
        vocabulary: &SignatureVocabulary,
        fragments: &Fragments,
        config: &TimeSeriesTrainingConfig,
    ) -> Result<(Self, Vec<EpochStats>), CoreError> {
        if vocabulary.is_empty() {
            return Err(CoreError::InvalidTrainingData {
                reason: "signature vocabulary is empty".into(),
            });
        }
        let encoder = OneHotEncoder::new(discretizer);

        // Precompute per-fragment discretized vectors and targets.
        let prepared: Vec<(Vec<DiscreteVector>, Vec<usize>)> = fragments
            .iter()
            .filter(|frag| frag.len() >= 2)
            .map(|frag| {
                let vectors: Vec<DiscreteVector> =
                    frag.iter().map(|r| discretizer.discretize(r)).collect();
                let targets: Vec<usize> = frag
                    .iter()
                    .skip(1)
                    .map(|r| {
                        vocabulary
                            .id_of(&discretizer.signature(r))
                            // PANIC: the vocabulary was built from this very
                            // training set a few lines up, so every record's
                            // signature has an id.
                            .expect("training records are in the vocabulary")
                    })
                    .collect();
                (vectors, targets)
            })
            .collect();
        if prepared.is_empty() {
            return Err(CoreError::InvalidTrainingData {
                reason: "no fragments with at least two packages".into(),
            });
        }

        let model = LstmClassifier::new(&ModelConfig {
            input_dim: encoder.dims(),
            hidden_dims: config.hidden_dims.clone(),
            num_classes: vocabulary.len(),
            seed: config.seed,
        });
        let mut detector = TimeSeriesDetector {
            discretizer: discretizer.clone(),
            vocabulary: vocabulary.clone(),
            encoder,
            model,
            k: config.initial_k.max(1),
        };

        let mut trainer = Trainer::new(TrainingConfig {
            epochs: 1, // driven epoch-by-epoch below
            chunk_len: config.chunk_len,
            batch_chunks: config.batch_chunks,
            learning_rate: config.learning_rate,
            num_threads: config.num_threads,
            shuffle_seed: config.seed,
            ..TrainingConfig::default()
        });
        let mut noise_rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);
        let mut stats = Vec::with_capacity(config.epochs);
        let clean: Option<Vec<Sequence>> = if config.noise.is_none() {
            Some(detector.build_sequences(&prepared, None, &mut noise_rng))
        } else {
            None
        };
        for epoch in 0..config.epochs {
            let sequences = match (&clean, config.noise) {
                (Some(seqs), _) => seqs.clone(),
                (None, noise) => detector.build_sequences(&prepared, noise, &mut noise_rng),
            };
            stats.push(trainer.fit_epoch(&mut detector.model, &sequences, epoch));
        }
        Ok((detector, stats))
    }

    fn build_sequences(
        &self,
        prepared: &[(Vec<DiscreteVector>, Vec<usize>)],
        noise: Option<NoiseConfig>,
        rng: &mut ChaCha12Rng,
    ) -> Vec<Sequence> {
        use rand::Rng;
        let cards = self.encoder.cardinalities();
        prepared
            .iter()
            .map(|(vectors, targets)| {
                let steps: Vec<(Vec<f32>, usize)> = vectors[..vectors.len() - 1]
                    .iter()
                    .zip(targets.iter())
                    .map(|(vec, &target)| {
                        let (encoded, _) = match noise {
                            Some(n) => {
                                let sig = icsad_features::signature_of(vec);
                                let count = self
                                    .vocabulary
                                    .id_of(&sig)
                                    .map(|id| self.vocabulary.count(id))
                                    .unwrap_or(0);
                                let p = n.lambda / (n.lambda + count as f64);
                                if rng.gen::<f64>() < p {
                                    let mut noisy = *vec;
                                    mutate_noise(&mut noisy, cards, n.max_features, rng);
                                    (self.encoder.encode(&noisy, true), true)
                                } else {
                                    (self.encoder.encode(vec, false), false)
                                }
                            }
                            None => (self.encoder.encode(vec, false), false),
                        };
                        (encoded, target)
                    })
                    .collect();
                Sequence::new(steps)
            })
            .collect()
    }

    /// Reassembles a trained detector from its serialized parts (the
    /// artifact load path; see [`crate::artifact`]), rebuilding the one-hot
    /// encoder from the discretizer and cross-checking that the model's
    /// dimensions actually fit the feature layout and vocabulary.
    pub(crate) fn from_parts(
        discretizer: Discretizer,
        vocabulary: SignatureVocabulary,
        model: LstmClassifier,
        k: usize,
    ) -> Result<Self, String> {
        if vocabulary.is_empty() {
            return Err("signature vocabulary is empty".into());
        }
        // `k > vocabulary.len()` is deliberately allowed: `choose_k` falls
        // back to `max_k` when no k meets the error budget, and a tiny
        // vocabulary makes that fallback exceed |S| in legitimately
        // trained detectors — rejecting it here would break round-trip.
        if k == 0 {
            return Err("k must be positive".into());
        }
        if model.num_classes() != vocabulary.len() {
            return Err(format!(
                "model predicts {} classes but the vocabulary holds {} signatures",
                model.num_classes(),
                vocabulary.len()
            ));
        }
        let encoder = OneHotEncoder::new(&discretizer);
        if encoder.dims() != model.config().input_dim {
            return Err(format!(
                "model expects {}-dimensional inputs but the discretizer encodes {} dims",
                model.config().input_dim,
                encoder.dims()
            ));
        }
        Ok(TimeSeriesDetector {
            discretizer,
            vocabulary,
            encoder,
            model,
            k,
        })
    }

    /// The signature database this detector predicts over.
    pub fn vocabulary(&self) -> &SignatureVocabulary {
        &self.vocabulary
    }

    /// The fitted discretizer.
    pub fn discretizer(&self) -> &Discretizer {
        &self.discretizer
    }

    /// The current `k` of the top-`k` decision rule.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets `k` (paper §V-2 / Fig. 7 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn set_k(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
    }

    /// Model memory in bytes (LSTM + dense parameters).
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes()
    }

    /// The underlying classifier (for serialization or inspection).
    pub fn model(&self) -> &LstmClassifier {
        &self.model
    }

    /// Computes the top-`k` error `err_k` on anomaly-free fragments: the
    /// fraction of next-signature predictions whose true signature is not
    /// among the `k` most probable (paper §V-2; Fig. 6).
    pub fn top_k_error(&self, fragments: &Fragments, k: usize) -> f64 {
        let mut misses = 0usize;
        let mut total = 0usize;
        for frag in fragments.iter() {
            if frag.len() < 2 {
                continue;
            }
            let inputs: Vec<Vec<f32>> = frag[..frag.len() - 1]
                .iter()
                .map(|r| self.encoder.encode(&self.discretizer.discretize(r), false))
                .collect();
            let probs = self.model.predict_sequence(&inputs);
            for (p, r) in probs.iter().zip(frag.iter().skip(1)) {
                total += 1;
                let target = self.vocabulary.id_of(&self.discretizer.signature(r));
                match target {
                    Some(t) if loss::in_top_k(p, t, k) => {}
                    _ => misses += 1,
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// Computes `err_k` for every `k` in `1..=max_k` in one pass (the
    /// Fig. 6 curve).
    pub fn top_k_error_curve(&self, fragments: &Fragments, max_k: usize) -> Vec<f64> {
        let mut misses = vec![0usize; max_k + 1];
        let mut total = 0usize;
        for frag in fragments.iter() {
            if frag.len() < 2 {
                continue;
            }
            let inputs: Vec<Vec<f32>> = frag[..frag.len() - 1]
                .iter()
                .map(|r| self.encoder.encode(&self.discretizer.discretize(r), false))
                .collect();
            let probs = self.model.predict_sequence(&inputs);
            for (p, r) in probs.iter().zip(frag.iter().skip(1)) {
                total += 1;
                let target = self.vocabulary.id_of(&self.discretizer.signature(r));
                for (k, miss) in misses.iter_mut().enumerate().skip(1) {
                    let hit = matches!(target, Some(t) if loss::in_top_k(p, t, k));
                    if !hit {
                        *miss += 1;
                    }
                }
            }
        }
        (1..=max_k)
            .map(|k| {
                if total == 0 {
                    0.0
                } else {
                    misses[k] as f64 / total as f64
                }
            })
            .collect()
    }

    /// Chooses the minimal `k` with validation `err_k < theta` (paper §V-2)
    /// and installs it. Falls back to `max_k` if the budget is never met.
    pub fn choose_k(&mut self, validation: &Fragments, theta: f64, max_k: usize) -> usize {
        let errors = self.top_k_error_curve(validation, max_k.max(1));
        let k = errors
            .iter()
            .position(|&e| e < theta)
            .map(|i| i + 1)
            .unwrap_or(max_k.max(1));
        self.k = k;
        k
    }

    /// Begins a streaming detection pass.
    pub fn begin(&self) -> TsState {
        TsState {
            stream: self.model.new_state(),
            prediction: None,
            scratch: vec![0.0f32; self.model.num_classes()],
            x_buf: vec![0.0f32; self.encoder.dims()],
        }
    }

    /// Processes one package in streaming mode.
    ///
    /// `vector` is the package's discretized features; `signature_id` its
    /// signature's class id (`None` if the signature is not in the
    /// database — such packages are anomalous by definition).
    /// `flag_noisy` forces the package's noise bit (used by the combined
    /// framework to feed back Bloom-level detections).
    ///
    /// Returns `F_t` for this package: `true` = anomalous. The very first
    /// package of a stream cannot be classified (no history) and returns
    /// `false` unless its signature is unknown.
    pub fn process(
        &self,
        state: &mut TsState,
        vector: &DiscreteVector,
        signature_id: Option<usize>,
        flag_noisy: Option<bool>,
    ) -> bool {
        self.process_with_rank(state, vector, signature_id, flag_noisy)
            .0
    }

    /// Like [`TimeSeriesDetector::process`], additionally returning the
    /// 1-based rank of the package's signature in the rolling prediction
    /// (`None` for the first package of a stream or an unknown signature).
    /// The rank feeds the dynamic-`k` controller of
    /// [`crate::dynamic_k`].
    pub fn process_with_rank(
        &self,
        state: &mut TsState,
        vector: &DiscreteVector,
        signature_id: Option<usize>,
        flag_noisy: Option<bool>,
    ) -> (bool, Option<usize>) {
        let (anomalous, rank) = match (&state.prediction, signature_id) {
            (_, None) => (true, None),
            (None, Some(_)) => (false, None),
            (Some(pred), Some(id)) => {
                let rank = loss::rank_of(pred, id);
                (rank > self.k, Some(rank))
            }
        };
        // Feed the package back as input for the next prediction, with its
        // anomaly bit per §V-3 / §VI. Both the one-hot input and the rolling
        // prediction reuse state-owned buffers: the steady-state step is
        // allocation-free (asserted by the engine's counting-allocator test).
        let noisy = flag_noisy.unwrap_or(anomalous);
        if state.x_buf.len() != self.encoder.dims() {
            // Hollow or foreign state (e.g. deserialized): size it once.
            state.x_buf.resize(self.encoder.dims(), 0.0);
        }
        self.encoder.encode_into(vector, noisy, &mut state.x_buf);
        self.model
            .step_logits(&mut state.stream, &state.x_buf, &mut state.scratch);
        match &mut state.prediction {
            Some(pred) => pred.copy_from_slice(&state.scratch),
            None => state.prediction = Some(state.scratch.clone()),
        }
        (anomalous, rank)
    }

    /// Fresh (empty) scratch for [`TimeSeriesDetector::process_batch`].
    pub fn batch_scratch(&self) -> TsBatchScratch {
        TsBatchScratch {
            nn: self.model.batch_scratch(),
            xs: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// Batched [`TimeSeriesDetector::process`]: advances `lanes.len()`
    /// independent streams by one package each, stepping all of them
    /// through the LSTM together as matrix–matrix products.
    ///
    /// Entry `i` of `vectors` / `signature_ids` / `flag_noisy` belongs to
    /// stream `states[lanes[i]]`; lane indices must be distinct. Decisions
    /// are appended to `out` (one `F_t` bool per entry, in order) and every
    /// lane's state ends up bit-identical to processing it alone with
    /// [`TimeSeriesDetector::process`].
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree or a lane index is out of
    /// bounds.
    #[allow(clippy::too_many_arguments)] // one parallel slice per per-lane input
    pub fn process_batch(
        &self,
        states: &mut [TsState],
        lanes: &[usize],
        vectors: &[DiscreteVector],
        signature_ids: &[Option<usize>],
        flag_noisy: &[Option<bool>],
        scratch: &mut TsBatchScratch,
        out: &mut Vec<bool>,
    ) {
        self.process_batch_inner(
            states,
            lanes,
            vectors,
            signature_ids,
            flag_noisy,
            scratch,
            out,
            None,
        );
    }

    /// [`TimeSeriesDetector::process_batch`] that additionally appends the
    /// pre-step 1-based rank of each entry's signature in its lane's
    /// rolling prediction to `ranks` (`None` for a stream's first package
    /// or an unknown signature) — exactly the rank
    /// [`TimeSeriesDetector::process_with_rank`] returns per record. The
    /// rank is computed once and shared with the fixed-`k` decision, so
    /// dynamic-`k` callers ([`crate::combined::CombinedDetector::classify_batch_adaptive`])
    /// pay nothing extra on the hot path.
    ///
    /// # Panics
    ///
    /// Same contract as [`TimeSeriesDetector::process_batch`].
    #[allow(clippy::too_many_arguments)] // one parallel slice per per-lane input
    pub fn process_batch_with_ranks(
        &self,
        states: &mut [TsState],
        lanes: &[usize],
        vectors: &[DiscreteVector],
        signature_ids: &[Option<usize>],
        flag_noisy: &[Option<bool>],
        scratch: &mut TsBatchScratch,
        out: &mut Vec<bool>,
        ranks: &mut Vec<Option<usize>>,
    ) {
        self.process_batch_inner(
            states,
            lanes,
            vectors,
            signature_ids,
            flag_noisy,
            scratch,
            out,
            Some(ranks),
        );
    }

    #[allow(clippy::too_many_arguments)] // one parallel slice per per-lane input
    fn process_batch_inner(
        &self,
        states: &mut [TsState],
        lanes: &[usize],
        vectors: &[DiscreteVector],
        signature_ids: &[Option<usize>],
        flag_noisy: &[Option<bool>],
        scratch: &mut TsBatchScratch,
        out: &mut Vec<bool>,
        mut ranks: Option<&mut Vec<Option<usize>>>,
    ) {
        let batch = lanes.len();
        assert_eq!(vectors.len(), batch, "vectors/lanes mismatch");
        assert_eq!(signature_ids.len(), batch, "ids/lanes mismatch");
        assert_eq!(flag_noisy.len(), batch, "flags/lanes mismatch");
        if batch == 0 {
            return;
        }
        if batch == 1 {
            // A one-lane batch gains nothing from the gemm path (and pays
            // its packing); the streaming step is the same computation.
            let (anomalous, rank) = self.process_with_rank(
                &mut states[lanes[0]],
                &vectors[0],
                signature_ids[0],
                flag_noisy[0],
            );
            out.push(anomalous);
            if let Some(ranks) = ranks {
                ranks.push(rank);
            }
            return;
        }
        let dims = self.encoder.dims();
        let nc = self.model.num_classes();
        if scratch.xs.len() < batch * dims {
            scratch.xs.resize(batch * dims, 0.0);
        }
        if scratch.probs.len() < batch * nc {
            scratch.probs.resize(batch * nc, 0.0);
        }
        self.model.reserve_lanes(&mut scratch.nn, batch);

        // Per-lane decision from the rolling prediction, then the batched
        // feedback step (decision order mirrors `process_with_rank`).
        for i in 0..batch {
            let state = &states[lanes[i]];
            let (anomalous, rank) = match (&state.prediction, signature_ids[i]) {
                (_, None) => (true, None),
                (None, Some(_)) => (false, None),
                (Some(pred), Some(id)) => {
                    let rank = loss::rank_of(pred, id);
                    (rank > self.k, Some(rank))
                }
            };
            out.push(anomalous);
            if let Some(ranks) = ranks.as_deref_mut() {
                ranks.push(rank);
            }
            let noisy = flag_noisy[i].unwrap_or(anomalous);
            self.encoder.encode_into(
                &vectors[i],
                noisy,
                &mut scratch.xs[i * dims..(i + 1) * dims],
            );
            self.model.gather_lane(&mut scratch.nn, i, &state.stream);
        }

        self.model.forward_batch_gathered_logits(
            &mut scratch.nn,
            batch,
            &scratch.xs[..batch * dims],
            &mut scratch.probs[..batch * nc],
        );

        for (i, &lane) in lanes.iter().enumerate() {
            let state = &mut states[lane];
            self.model.scatter_lane(&scratch.nn, i, &mut state.stream);
            let row = &scratch.probs[i * nc..(i + 1) * nc];
            match &mut state.prediction {
                Some(pred) => pred.copy_from_slice(row),
                None => state.prediction = Some(row.to_vec()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icsad_dataset::{DatasetConfig, GasPipelineDataset, Split};
    use icsad_features::DiscretizationConfig;

    fn fast_config(epochs: usize, noise: bool) -> TimeSeriesTrainingConfig {
        TimeSeriesTrainingConfig {
            hidden_dims: vec![24],
            epochs,
            learning_rate: 1e-2,
            // Accumulate fewer chunks per optimizer step than the
            // production default so the small test captures still get
            // enough Adam updates to converge.
            batch_chunks: 8,
            noise: if noise {
                Some(NoiseConfig::default())
            } else {
                None
            },
            seed: 3,
            ..TimeSeriesTrainingConfig::default()
        }
    }

    fn setup(total: usize, seed: u64) -> (Discretizer, SignatureVocabulary, Split) {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed,
            attack_probability: 0.05,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let disc = Discretizer::fit(
            &DiscretizationConfig::paper_defaults(),
            split.train().records(),
        )
        .unwrap();
        let vocab = SignatureVocabulary::build(&disc, split.train().records());
        (disc, vocab, split)
    }

    #[test]
    fn training_reduces_loss() {
        let (disc, vocab, split) = setup(6_000, 1);
        let (_, stats) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(8, false))
                .unwrap();
        assert_eq!(stats.len(), 8);
        assert!(
            stats.last().unwrap().mean_loss < stats[0].mean_loss,
            "loss {:?} should decrease",
            stats.iter().map(|s| s.mean_loss).collect::<Vec<_>>()
        );
    }

    #[test]
    fn top_k_error_decreases_with_k() {
        let (disc, vocab, split) = setup(6_000, 2);
        let (det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(6, false))
                .unwrap();
        let curve = det.top_k_error_curve(split.validation(), 8);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "curve must be non-increasing: {curve:?}"
            );
        }
        // Consistency with the single-k computation.
        let e3 = det.top_k_error(split.validation(), 3);
        assert!((e3 - curve[2]).abs() < 1e-12);
    }

    #[test]
    fn choose_k_selects_minimal_k_under_budget() {
        let (disc, vocab, split) = setup(6_000, 3);
        let (mut det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(6, false))
                .unwrap();
        let curve = det.top_k_error_curve(split.validation(), 10);
        let theta = (curve[0] + curve[9]) / 2.0; // somewhere inside the range
        let k = det.choose_k(split.validation(), theta, 10);
        assert_eq!(det.k(), k);
        if curve.iter().any(|&e| e < theta) {
            assert!(curve[k - 1] < theta);
            if k > 1 {
                assert!(curve[k - 2] >= theta, "k should be minimal");
            }
        } else {
            // Flat curve: no k meets the budget, fall back to max_k.
            assert_eq!(k, 10);
        }
    }

    #[test]
    fn streaming_process_flags_unknown_signatures() {
        let (disc, vocab, split) = setup(4_000, 4);
        let (det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(2, false))
                .unwrap();
        let mut state = det.begin();
        let r = &split.train().records()[0];
        let v = disc.discretize(r);
        // Unknown signature: always anomalous.
        assert!(det.process(&mut state, &v, None, None));
        // Known signature right after: depends on prediction, but must not
        // panic and must update state.
        let id = vocab.id_of(&disc.signature(r));
        let _ = det.process(&mut state, &v, id, None);
    }

    #[test]
    fn first_package_with_known_signature_passes() {
        let (disc, vocab, split) = setup(4_000, 5);
        let (det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(2, false))
                .unwrap();
        let mut state = det.begin();
        let r = &split.train().records()[0];
        let v = disc.discretize(r);
        let id = vocab.id_of(&disc.signature(r));
        assert!(!det.process(&mut state, &v, id, None));
    }

    #[test]
    fn trained_detector_approaches_oov_floor_at_moderate_k() {
        // The validation top-k error is bounded below by the fraction of
        // validation packages whose signature is absent from the training
        // vocabulary (at this small capture size that floor is large; it
        // shrinks with capture size — see EXPERIMENTS.md). The trained
        // model must get within a modest margin of the floor.
        let (disc, vocab, split) = setup(10_000, 6);
        let oov = split
            .validation()
            .records()
            .iter()
            .filter(|r| vocab.id_of(&disc.signature(r)).is_none())
            .count() as f64
            / split.validation().len() as f64;
        let (det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(16, false))
                .unwrap();
        let err = det.top_k_error(split.validation(), 8);
        assert!(
            err < oov + 0.15,
            "validation top-8 error {err} too far above the OOV floor {oov}"
        );
    }

    #[test]
    fn noise_training_runs_and_model_remains_usable() {
        let (disc, vocab, split) = setup(6_000, 7);
        let (det, stats) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(6, true)).unwrap();
        assert_eq!(stats.len(), 6);
        let err = det.top_k_error(split.validation(), 8);
        assert!(err < 0.6, "noise-trained validation error {err}");
    }

    #[test]
    fn set_k_validates() {
        let (disc, vocab, split) = setup(4_000, 8);
        let (mut det, _) =
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(1, false))
                .unwrap();
        det.set_k(7);
        assert_eq!(det.k(), 7);
        let result = std::panic::catch_unwind(move || det.set_k(0));
        assert!(result.is_err());
    }

    #[test]
    fn empty_vocabulary_rejected() {
        let (disc, _, split) = setup(4_000, 9);
        let vocab = SignatureVocabulary::default();
        assert!(
            TimeSeriesDetector::train(&disc, &vocab, split.train(), &fast_config(1, false))
                .is_err()
        );
    }
}
