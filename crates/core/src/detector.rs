//! The unifying detector interface.
//!
//! Every anomaly detector in the workspace — the paper's combined two-level
//! framework and the six Table IV baselines in `icsad-baselines` — answers
//! the same question: given a chronological stream of packages, which of
//! them are anomalous? This trait pins that contract down so experiment
//! harnesses, the streaming engine and the comparison tables can treat all
//! of them uniformly.

use icsad_dataset::Record;

use crate::combined::CombinedDetector;
use crate::metrics::ClassificationReport;

/// A stream-level anomaly detector: one boolean decision per package.
///
/// Implementations may be stateful internally per call (the combined
/// framework threads LSTM state through the stream; window baselines group
/// the stream into fixed windows), but a call always starts from a fresh
/// stream state, so repeated calls with the same records give the same
/// decisions.
pub trait Detector {
    /// Short display name (as used in Tables IV and V).
    fn name(&self) -> &'static str;

    /// Classifies a chronological record stream: `true` = anomalous, one
    /// decision per record.
    fn detect_stream(&self, records: &[Record]) -> Vec<bool>;

    /// Classifies a stream and scores the decisions against ground-truth
    /// labels.
    fn evaluate_stream(&self, records: &[Record]) -> ClassificationReport {
        let decisions = self.detect_stream(records);
        let mut report = ClassificationReport::default();
        for (r, &d) in records.iter().zip(decisions.iter()) {
            report.record(r.label, d);
        }
        report
    }
}

impl Detector for CombinedDetector {
    fn name(&self) -> &'static str {
        "Combined (BF + LSTM)"
    }

    fn detect_stream(&self, records: &[Record]) -> Vec<bool> {
        self.classify_stream(records)
            .into_iter()
            .map(|level| level.is_anomalous())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageLevelDetector;
    use crate::timeseries::{TimeSeriesDetector, TimeSeriesTrainingConfig};
    use icsad_dataset::{DatasetConfig, GasPipelineDataset};
    use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};

    #[test]
    fn combined_detector_reports_through_the_trait() {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 5_000,
            seed: 21,
            attack_probability: 0.08,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let disc = Discretizer::fit(
            &DiscretizationConfig::paper_defaults(),
            split.train().records(),
        )
        .unwrap();
        let vocab = SignatureVocabulary::build(&disc, split.train().records());
        let package = PackageLevelDetector::train(&disc, &vocab, 0.001).unwrap();
        let config = TimeSeriesTrainingConfig {
            hidden_dims: vec![12],
            epochs: 1,
            seed: 21,
            ..TimeSeriesTrainingConfig::default()
        };
        let (ts, _) = TimeSeriesDetector::train(&disc, &vocab, split.train(), &config).unwrap();
        let det = CombinedDetector::new(package, ts);

        let boxed: &dyn Detector = &det;
        assert!(boxed.name().contains("Combined"));
        let decisions = boxed.detect_stream(split.test());
        assert_eq!(decisions.len(), split.test().len());
        let report = boxed.evaluate_stream(split.test());
        assert_eq!(report.confusion.total(), split.test().len() as u64);
        // Trait decisions agree with the inherent API.
        let inherent = det.evaluate(split.test());
        assert_eq!(report, inherent);
    }
}
