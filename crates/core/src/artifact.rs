//! Versioned commissioning artifacts: the on-disk form of a fully trained
//! [`CombinedDetector`].
//!
//! The paper's framework is trained once, at commissioning time, on clean
//! traffic — and then runs as an online monitor. This module closes the
//! train-offline / load-online gap: everything the deployed detector needs
//! (discretizer, signature vocabulary, Bloom filter, LSTM parameters, and
//! the chosen `k`) round-trips through one CRC-checked binary blob, so an
//! engine can cold-start in milliseconds instead of retraining for minutes
//! ([`crate::CombinedDetector::save`] / [`crate::CombinedDetector::load`],
//! `icsad_engine::Engine::start_from_artifact`).
//!
//! # Format (version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! offset 0   magic           "ICSA" (4 bytes)
//!        4   format version  u16 (currently 1)
//!        6   section count   u16
//!        8   section table   count × { tag: 4 bytes, len: u64 }
//!        …   payloads        concatenated in table order
//!  last 4    checksum        CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Version-1 sections (decoders reject an artifact missing any of them or
//! repeating a tag, and skip unknown tags so later minor revisions can
//! append sections without breaking old readers):
//!
//! | tag    | payload |
//! |--------|---------|
//! | `DISC` | [`Discretizer::to_bytes`] |
//! | `VOCB` | [`SignatureVocabulary::to_bytes`] |
//! | `BLOM` | [`BloomFilter::to_bytes`] |
//! | `LSTM` | [`icsad_nn::LstmClassifier::to_bytes`] |
//! | `HYPR` | chosen `k` as u64 |
//!
//! A bumped *format version* signals an incompatible layout change; readers
//! return [`ArtifactError::UnsupportedVersion`] rather than guessing.
//!
//! Decoding never panics on corrupt input: every failure mode maps to a
//! typed [`ArtifactError`], and cross-section consistency (model width vs.
//! encoder dims, class count vs. vocabulary size) is verified before a
//! detector is handed back.

use std::error::Error;
use std::fmt;
use std::path::Path;

use icsad_bloom::BloomFilter;
use icsad_features::{Discretizer, SignatureVocabulary};
use icsad_nn::LstmClassifier;

use crate::combined::CombinedDetector;
use crate::package::PackageLevelDetector;
use crate::timeseries::TimeSeriesDetector;

/// Leading magic bytes of every artifact.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"ICSA";

/// Artifact format version written by [`CombinedDetector::to_bytes`].
pub const ARTIFACT_VERSION: u16 = 1;

/// Most sections a reader accepts. Version 1 defines five; the headroom
/// leaves room for appended minor-revision sections while bounding the
/// work (and the duplicate-tag scan) an attacker-controlled section count
/// can demand before the checksum is ever consulted.
pub const MAX_SECTIONS: usize = 64;

const TAG_DISCRETIZER: [u8; 4] = *b"DISC";
const TAG_VOCABULARY: [u8; 4] = *b"VOCB";
const TAG_BLOOM: [u8; 4] = *b"BLOM";
const TAG_LSTM: [u8; 4] = *b"LSTM";
const TAG_HYPER: [u8; 4] = *b"HYPR";

/// Errors produced while encoding, decoding or loading an artifact.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Reading or writing the artifact file failed.
    Io(std::io::Error),
    /// The buffer ends before the length its header declares.
    Truncated,
    /// The buffer continues past the length its header declares.
    TrailingData,
    /// The leading bytes are not [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The CRC-32 checksum does not match the artifact contents.
    ChecksumMismatch,
    /// A section required by this format version is absent.
    MissingSection(&'static str),
    /// A section payload failed to decode.
    SectionCorrupt {
        /// Tag of the offending section.
        section: &'static str,
    },
    /// The sections decoded individually but contradict each other (e.g.
    /// the model's class count differs from the vocabulary size).
    Inconsistent {
        /// Explanation of the contradiction.
        reason: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o failed: {e}"),
            ArtifactError::Truncated => write!(f, "artifact is truncated"),
            ArtifactError::TrailingData => write!(f, "artifact has trailing data"),
            ArtifactError::BadMagic => write!(f, "not an ICSA artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact format version {v} (this build reads {ARTIFACT_VERSION})"
                )
            }
            ArtifactError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            ArtifactError::MissingSection(tag) => write!(f, "artifact lacks section {tag}"),
            ArtifactError::SectionCorrupt { section } => {
                write!(f, "artifact section {section} is corrupt")
            }
            ArtifactError::Inconsistent { reason } => {
                write!(f, "artifact sections are inconsistent: {reason}")
            }
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Byte-at-a-time lookup table for the reflected IEEE polynomial, built at
/// compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) — the checksum guarding every artifact.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[usize::from((crc as u8) ^ b)];
    }
    !crc
}

fn tag_name(tag: [u8; 4]) -> &'static str {
    match &tag {
        b"DISC" => "DISC",
        b"VOCB" => "VOCB",
        b"BLOM" => "BLOM",
        b"LSTM" => "LSTM",
        b"HYPR" => "HYPR",
        _ => "????",
    }
}

/// A decoded section: its table tag and payload slice.
type Section<'a> = ([u8; 4], &'a [u8]);

/// Splits a verified artifact body into `(tag, payload)` pairs.
///
/// Expects `bytes` to be the full artifact; performs the header, length and
/// checksum validation and returns the payload slices in table order.
fn parse_sections(bytes: &[u8]) -> Result<Vec<Section<'_>>, ArtifactError> {
    // Smallest conceivable artifact: header (8) + empty table + CRC (4).
    if bytes.len() < 12 {
        return Err(if bytes.len() >= 4 && bytes[..4] != ARTIFACT_MAGIC {
            ArtifactError::BadMagic
        } else {
            ArtifactError::Truncated
        });
    }
    if bytes[..4] != ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    let count = usize::from(u16::from_le_bytes([bytes[6], bytes[7]]));
    if count > MAX_SECTIONS {
        return Err(ArtifactError::Inconsistent {
            reason: format!("section count {count} exceeds the limit of {MAX_SECTIONS}"),
        });
    }

    // Walk the section table, summing payload lengths with overflow checks.
    let table_len = count.checked_mul(12).ok_or(ArtifactError::Truncated)?;
    let header_len = 8usize
        .checked_add(table_len)
        .ok_or(ArtifactError::Truncated)?;
    if bytes.len() < header_len + 4 {
        return Err(ArtifactError::Truncated);
    }
    let mut sections_meta: Vec<([u8; 4], usize)> = Vec::with_capacity(count);
    let mut payload_total = 0usize;
    for i in 0..count {
        let at = 8 + i * 12;
        // PANIC: slice length is the literal 4 on both sides of try_into.
        let tag: [u8; 4] = bytes[at..at + 4].try_into().expect("4-byte slice");
        if sections_meta.iter().any(|(t, _)| *t == tag) {
            // Two sections with one tag cannot both be honored; accepting
            // the first would silently ignore the other's payload.
            return Err(ArtifactError::Inconsistent {
                reason: format!("duplicate section {}", tag_name(tag)),
            });
        }
        // PANIC: slice length is the literal 8 on both sides of try_into.
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8-byte slice"));
        let len = usize::try_from(len).map_err(|_| ArtifactError::Truncated)?;
        payload_total = payload_total
            .checked_add(len)
            .ok_or(ArtifactError::Truncated)?;
        sections_meta.push((tag, len));
    }
    let expected = header_len
        .checked_add(payload_total)
        .and_then(|n| n.checked_add(4))
        .ok_or(ArtifactError::Truncated)?;
    match bytes.len().cmp(&expected) {
        std::cmp::Ordering::Less => return Err(ArtifactError::Truncated),
        std::cmp::Ordering::Greater => return Err(ArtifactError::TrailingData),
        std::cmp::Ordering::Equal => {}
    }

    // Checksum covers everything before the trailing CRC word.
    // PANIC: bytes.len() == expected was just checked, so the tail is 4 bytes.
    let stored = u32::from_le_bytes(bytes[expected - 4..].try_into().expect("4-byte slice"));
    if crc32(&bytes[..expected - 4]) != stored {
        return Err(ArtifactError::ChecksumMismatch);
    }

    let mut sections = Vec::with_capacity(count);
    let mut at = header_len;
    for (tag, len) in sections_meta {
        sections.push((tag, &bytes[at..at + len]));
        at += len;
    }
    Ok(sections)
}

fn find_section<'a>(sections: &[Section<'a>], tag: [u8; 4]) -> Result<&'a [u8], ArtifactError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, payload)| *payload)
        .ok_or(ArtifactError::MissingSection(tag_name(tag)))
}

impl CombinedDetector {
    /// Serializes the entire trained framework into a version-1 artifact.
    ///
    /// The artifact stores one discretizer, installed in both levels on
    /// load — every framework produced by
    /// [`crate::experiment::train_framework`] shares one discretizer
    /// between its levels.
    ///
    /// # Panics
    ///
    /// Panics if the two levels hold *different* discretizers (possible
    /// only by assembling [`CombinedDetector::new`] from independently
    /// trained parts): serializing just one of them would silently change
    /// the reloaded detector's decisions, breaking the bit-identical
    /// round-trip guarantee of [`CombinedDetector::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        assert!(
            self.package_level().discretizer() == self.time_series_level().discretizer(),
            "both detector levels must share one discretizer to serialize the framework"
        );
        let hyper = (self.k() as u64).to_le_bytes().to_vec();
        let sections: [([u8; 4], Vec<u8>); 5] = [
            (
                TAG_DISCRETIZER,
                self.package_level().discretizer().to_bytes(),
            ),
            (
                TAG_VOCABULARY,
                self.time_series_level().vocabulary().to_bytes(),
            ),
            (TAG_BLOOM, self.package_level().filter().to_bytes()),
            (TAG_LSTM, self.time_series_level().model().to_bytes()),
            (TAG_HYPER, hyper),
        ];

        let payload_total: usize = sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(8 + sections.len() * 12 + payload_total + 4);
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
        for (tag, payload) in &sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        }
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Reassembles a detector from an artifact produced by
    /// [`CombinedDetector::to_bytes`].
    ///
    /// The restored detector makes **bit-identical decisions** to the one
    /// that was saved: floats round trip via their bit patterns and the
    /// decision paths share the same code.
    ///
    /// # Errors
    ///
    /// Any malformed input — truncation, bad magic, an unknown format
    /// version, checksum mismatch, a corrupt or missing section, or
    /// sections that contradict each other — returns the corresponding
    /// [`ArtifactError`]; this function never panics on untrusted bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let sections = parse_sections(bytes)?;

        let discretizer = Discretizer::from_bytes(find_section(&sections, TAG_DISCRETIZER)?)
            .ok_or(ArtifactError::SectionCorrupt { section: "DISC" })?;
        let vocabulary = SignatureVocabulary::from_bytes(find_section(&sections, TAG_VOCABULARY)?)
            .ok_or(ArtifactError::SectionCorrupt { section: "VOCB" })?;
        let filter = BloomFilter::from_bytes(find_section(&sections, TAG_BLOOM)?)
            .map_err(|_| ArtifactError::SectionCorrupt { section: "BLOM" })?;
        let model = LstmClassifier::from_bytes(find_section(&sections, TAG_LSTM)?)
            .ok_or(ArtifactError::SectionCorrupt { section: "LSTM" })?;
        let hyper = find_section(&sections, TAG_HYPER)?;
        let k: [u8; 8] = hyper
            .try_into()
            .map_err(|_| ArtifactError::SectionCorrupt { section: "HYPR" })?;
        let k = usize::try_from(u64::from_le_bytes(k))
            .map_err(|_| ArtifactError::SectionCorrupt { section: "HYPR" })?;

        let package =
            PackageLevelDetector::from_parts(discretizer.clone(), filter, vocabulary.len())
                .map_err(|reason| ArtifactError::Inconsistent { reason })?;
        let timeseries = TimeSeriesDetector::from_parts(discretizer, vocabulary, model, k)
            .map_err(|reason| ArtifactError::Inconsistent { reason })?;
        Ok(CombinedDetector::new(package, timeseries))
    }

    /// Writes the artifact to a file (see [`CombinedDetector::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failures.
    ///
    /// # Panics
    ///
    /// Panics when the two levels hold different discretizers, exactly
    /// like [`CombinedDetector::to_bytes`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an artifact file written by [`CombinedDetector::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failures and any
    /// [`CombinedDetector::from_bytes`] error on malformed contents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        CombinedDetector::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_and_tiny_buffers_are_truncated_or_bad_magic() {
        assert!(matches!(
            CombinedDetector::from_bytes(&[]),
            Err(ArtifactError::Truncated)
        ));
        assert!(matches!(
            CombinedDetector::from_bytes(b"ICSA"),
            Err(ArtifactError::Truncated)
        ));
        assert!(matches!(
            CombinedDetector::from_bytes(b"NOPE-not-an-artifact"),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ArtifactError::BadMagic.to_string().contains("magic"));
        assert!(ArtifactError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(ArtifactError::MissingSection("DISC")
            .to_string()
            .contains("DISC"));
        assert!(ArtifactError::SectionCorrupt { section: "LSTM" }
            .to_string()
            .contains("LSTM"));
        let io = ArtifactError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
    }
}
