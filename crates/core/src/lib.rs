//! The paper's contribution: a multi-level anomaly detection framework for
//! industrial control systems combining package signatures and LSTM
//! networks (Feng, Li, Chana — DSN 2017).
//!
//! Architecture (paper Fig. 3):
//!
//! ```text
//!             ┌───────────────────────┐  not in filter   ┌─────────┐
//!  package ──►│ Bloom filter detector ├─────────────────►│ anomaly │
//!             └───────────┬───────────┘                  └─────────┘
//!                         │ passed                            ▲
//!             ┌───────────▼───────────┐  sig ∉ top-k          │
//!             │ time-series detector  ├───────────────────────┘
//!             │ (stacked LSTM softmax)│
//!             └───────────┬───────────┘
//!                         │  every package (with its anomaly bit)
//!                         ▼  feeds back into the LSTM input
//! ```
//!
//! * [`package`] — the package-level detector: signature database in a
//!   Bloom filter (paper §IV),
//! * [`timeseries`] — the time-series-level detector: a stacked LSTM
//!   softmax classifier over signatures with the top-`k` decision rule,
//!   validation-driven choice of `k`, and probabilistic-noise training
//!   (paper §V),
//! * [`combined`] — the combined framework with anomaly-bit feedback
//!   (paper §VI),
//! * [`streaming`] — the pluggable streaming-backend abstraction the
//!   engine hosts (fixed-`k`, per-stream dynamic-`k`, window baselines)
//!   with hot-reload support,
//! * [`metrics`] — precision/recall/accuracy/F1 and per-attack-type recall
//!   (papers §VIII-B, Tables IV/V),
//! * [`experiment`] — the end-to-end train-validate-test pipeline used by
//!   the examples and the benchmark harness.
//!
//! # Examples
//!
//! ```no_run
//! use icsad_core::experiment::{train_framework, ExperimentConfig};
//! use icsad_dataset::{DatasetConfig, GasPipelineDataset};
//!
//! let data = GasPipelineDataset::generate(&DatasetConfig {
//!     total_packages: 40_000,
//!     seed: 1,
//!     ..DatasetConfig::default()
//! });
//! let split = data.split_chronological(0.6, 0.2);
//! let trained = train_framework(&split, &ExperimentConfig::fast())?;
//! let report = trained.evaluate(split.test());
//! println!("F1 = {:.2}", report.f1_score());
//! # Ok::<(), icsad_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod combined;
pub mod detector;
pub mod dynamic_k;
mod error;
pub mod experiment;
pub mod metrics;
pub mod package;
pub mod streaming;
pub mod timeseries;

pub use artifact::{ArtifactError, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use combined::{CombinedBatch, CombinedDetector};
pub use detector::Detector;
pub use dynamic_k::{DynamicKConfig, DynamicKController};
pub use error::CoreError;
pub use metrics::{ClassificationReport, ConfusionCounts, PerAttackRecall};
pub use package::PackageLevelDetector;
pub use streaming::{
    AdaptiveCombined, LaneDecision, StreamingDetector, StreamingSession, SwapError,
};
pub use timeseries::{NoiseConfig, TimeSeriesDetector, TimeSeriesTrainingConfig};
