//! Error type for framework construction.

use std::error::Error;
use std::fmt;

use icsad_bloom::BloomError;
use icsad_features::FeatureError;

/// Errors produced while training or assembling the detection framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Feature engineering failed (discretizer fitting).
    Feature(FeatureError),
    /// Bloom filter construction failed.
    Bloom(BloomError),
    /// The training data is unusable for the requested configuration.
    InvalidTrainingData {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Feature(e) => write!(f, "feature engineering failed: {e}"),
            CoreError::Bloom(e) => write!(f, "bloom filter construction failed: {e}"),
            CoreError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Feature(e) => Some(e),
            CoreError::Bloom(e) => Some(e),
            CoreError::InvalidTrainingData { .. } => None,
        }
    }
}

impl From<FeatureError> for CoreError {
    fn from(e: FeatureError) -> Self {
        CoreError::Feature(e)
    }
}

impl From<BloomError> for CoreError {
    fn from(e: BloomError) -> Self {
        CoreError::Bloom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidTrainingData {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
        assert!(e.source().is_none());

        let e = CoreError::from(BloomError::Corrupt);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("bloom"));
    }
}
