//! The streaming backend abstraction: pluggable detectors for the engine.
//!
//! The offline [`Detector`](crate::Detector) trait answers "which packages
//! of this finished capture are anomalous?". An *online* monitor needs the
//! same question answered incrementally, over many interleaved streams at
//! once, which adds three requirements the offline trait cannot express:
//!
//! * **per-stream state** — each monitored PLC carries its own detector
//!   state (LSTM state, dynamic-k controller, window buffer),
//! * **batched stepping** — the engine advances many streams per round and
//!   wants one matrix–matrix LSTM step, not one matrix–vector step per
//!   stream,
//! * **deferred decisions** — window models (the Table IV baselines) can
//!   only judge a package once its window completes, so a decision may
//!   resolve several rounds after its package was pushed.
//!
//! [`StreamingDetector`] + [`StreamingSession`] pin that contract down.
//! Three backend families implement it:
//!
//! | backend | built on | decisions |
//! |---|---|---|
//! | [`CombinedDetector`] | `classify_batch` | immediate, fixed top-`k` |
//! | [`AdaptiveCombined`] | `classify_batch_adaptive` | immediate, per-stream dynamic `k` |
//! | `icsad_baselines::stream::WindowedBackend` | §VIII-C window protocol | deferred per window |
//!
//! Sessions hosting a [`CombinedDetector`] additionally support
//! **hot-reload** ([`StreamingSession::swap_combined`]): a freshly
//! commissioned artifact replaces the running detector at a round boundary,
//! resetting every lane's stream state — the engine builds its
//! `swap_artifact` path on this.

use std::sync::Arc;

use icsad_dataset::Record;

use crate::combined::{CombinedBatch, CombinedDetector, DetectionLevel};
use crate::dynamic_k::{DynamicKConfig, DynamicKController};

/// One resolved per-package decision, attributed to a session lane.
///
/// Backends that decide immediately emit one `LaneDecision` per record
/// pushed; window backends emit none until a lane's window completes, then
/// one per buffered record.
///
/// # Ordering contract
///
/// Within a lane, decisions always resolve **in the order the records were
/// pushed**, and the decision for a record depends only on that lane's
/// record prefix — never on which other lanes shared its batch, how calls
/// were sized, or when `classify_batch` ran. This is the invariant that
/// lets the engine pair decisions with labels through plain per-lane
/// FIFOs, and the reason its async runtime can reschedule, steal and
/// re-batch work freely while staying bit-identical to the per-record
/// path (pinned by the engine's deterministic-interleaving property
/// tests). Implementations are checked against the call-shape half of the
/// contract by debug assertions in [`StreamingSession::classify_batch`]
/// implementations (distinct, in-bounds lanes per call; immediate backends
/// emit exactly one in-order decision per pushed record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneDecision {
    /// The session lane (stream) the decision belongs to.
    pub lane: usize,
    /// `true` = anomalous.
    pub anomalous: bool,
}

/// Why a [`StreamingSession::swap_combined`] hot-reload was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The session's backend does not host a [`CombinedDetector`] (e.g. a
    /// window baseline), so there is nothing an `ICSA` artifact could
    /// replace.
    UnsupportedBackend {
        /// Display name of the refusing backend.
        backend: String,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnsupportedBackend { backend } => {
                write!(f, "backend {backend:?} does not support hot-reload")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// One disjoint lane partition of a classification round, detached from
/// its session so it can be classified on any thread.
///
/// Produced by [`StreamingSession::fork_round`]: the partition *owns* the
/// moved-out per-lane mutable state of its lanes (LSTM lane cells,
/// dynamic-`k` controllers, batch scratch) plus this round's records, and
/// shares only the `Arc`'d read-only detector weights with its siblings.
/// Two partitions of one round therefore never alias mutable memory —
/// [`RoundPartition::run`] needs `&mut self` and nothing else — which is
/// what lets a work-stealing pool classify them concurrently. (`Send`
/// holds because every field is owned or `Arc`-shared; the compiler
/// derives it, no `unsafe` involved.)
///
/// The session's lanes stay partitioned until
/// [`StreamingSession::join_round`] moves every state back; touching a
/// forked lane through the session in between is a contract violation
/// (the engine forks and joins within one round, so the window is never
/// observable).
pub struct RoundPartition {
    detector: Arc<CombinedDetector>,
    /// Global (session) lane ids, in round order.
    lanes: Vec<usize>,
    /// Local lane ids `0..lanes.len()` into `batch` (kept as a `Vec` so
    /// `classify_batch` can borrow it as a slice).
    local: Vec<usize>,
    records: Vec<Record>,
    /// Compact batch: local lane `i` holds the moved-in state of global
    /// lane `lanes[i]`.
    batch: CombinedBatch,
    /// Compacted controllers, one per lane (adaptive mode); empty in
    /// fixed-`k` mode.
    controllers: Vec<DynamicKController>,
    levels: Vec<DetectionLevel>,
}

impl RoundPartition {
    fn empty(detector: Arc<CombinedDetector>) -> Self {
        RoundPartition {
            batch: detector.begin_batch(),
            detector,
            lanes: Vec::new(),
            local: Vec::new(),
            records: Vec::new(),
            controllers: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// Number of lanes (= records) in this partition.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Classifies the partition's records, one per lane, exactly as the
    /// home session's `classify_batch` would have stepped these lanes.
    /// Touches only this partition's moved-in state plus the shared
    /// read-only detector, so disjoint partitions may run concurrently;
    /// per-lane decisions depend only on that lane's record prefix, so
    /// *where* and *when* this runs cannot change them.
    pub fn run(&mut self) {
        self.levels.clear();
        if self.controllers.is_empty() {
            self.detector.classify_batch(
                &mut self.batch,
                &self.local,
                &self.records,
                &mut self.levels,
            );
        } else {
            self.detector.classify_batch_adaptive(
                &mut self.batch,
                &self.local,
                &self.records,
                &mut self.controllers,
                &mut self.levels,
            );
        }
    }
}

/// A streaming anomaly-detection backend: the factory for per-shard
/// [`StreamingSession`]s.
///
/// A backend is immutable shared configuration (trained model, window
/// width, dynamic-k bounds); all mutable per-stream state lives in the
/// sessions it opens. One backend is typically shared by every shard of an
/// engine via `Arc`.
pub trait StreamingDetector: Send + Sync {
    /// Short display name (mirrors [`Detector::name`](crate::Detector::name)
    /// for backends that also implement the offline trait).
    fn name(&self) -> &str;

    /// Opens a fresh session with no lanes; add one lane per stream with
    /// [`StreamingSession::add_lane`].
    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession>;

    /// Whether sessions opened by this backend accept
    /// [`StreamingSession::swap_combined`] (hot-reload from an `ICSA`
    /// artifact). `false` unless the backend hosts a [`CombinedDetector`].
    fn supports_hot_swap(&self) -> bool {
        false
    }
}

/// Mutable per-shard state of a [`StreamingDetector`]: a set of independent
/// stream lanes stepped in batches.
pub trait StreamingSession: Send {
    /// Adds a fresh stream lane and returns its index.
    fn add_lane(&mut self) -> usize;

    /// Number of lanes added so far.
    fn lanes(&self) -> usize;

    /// Steps one record per *distinct* lane: `records[i]` is the next
    /// package of the stream on lane `lanes[i]`. Every decision that
    /// becomes resolvable — possibly none, possibly covering records pushed
    /// in earlier calls — is appended to `out`; per lane, decisions resolve
    /// in push order.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != lanes.len()` or a lane index is out of
    /// bounds. Lanes must not repeat within one call.
    fn classify_batch(&mut self, lanes: &[usize], records: &[Record], out: &mut Vec<LaneDecision>);

    /// End of stream: resolves every still-pending decision (window
    /// backends pass trailing partial windows as normal, mirroring the
    /// offline `windowed_decisions` protocol; immediate backends have
    /// nothing pending).
    fn finish(&mut self, out: &mut Vec<LaneDecision>);

    /// Retires a lane whose stream has left the topology: resets the
    /// lane's state to the cold-start state a fresh
    /// [`StreamingSession::add_lane`] would install, so the slot can be
    /// reassigned to a new stream that then classifies bit-identically to
    /// a cold start. Lane indices are otherwise unaffected.
    ///
    /// Returns `false` when the backend cannot recycle lanes — the
    /// default, kept by window baselines whose lanes defer decisions
    /// across rounds and therefore stay add-only. A refusal leaves the
    /// lane untouched.
    ///
    /// Contract for callers on `true`-returning backends: every decision
    /// for records already pushed on the lane must have resolved before
    /// the call (immediate backends guarantee this at push time), or the
    /// next stream's decisions would pair with the departed stream's
    /// packages.
    fn retire_lane(&mut self, lane: usize) -> bool {
        let _ = lane;
        false
    }

    /// Hot-reload: installs a newly commissioned [`CombinedDetector`],
    /// resetting every lane to a fresh stream state (LSTM state, rolling
    /// prediction and dynamic-k controller all restart — the swap point is
    /// a per-stream re-commissioning boundary). Lane indices remain valid.
    ///
    /// Contract for implementers that accept the swap: no decision may be
    /// left deferred across it — the engine calls
    /// [`StreamingSession::finish`] immediately before swapping (ending
    /// the pre-swap streams exactly like a shutdown), and after `finish`
    /// every record pushed so far must have resolved, or post-swap
    /// decisions would be paired with stale pre-swap packages.
    ///
    /// Backends not built on the combined framework refuse with
    /// [`SwapError::UnsupportedBackend`]; see
    /// [`StreamingDetector::supports_hot_swap`].
    fn swap_combined(&mut self, detector: Arc<CombinedDetector>) -> Result<(), SwapError>;

    /// Splits one round into up to `parts` disjoint [`RoundPartition`]s
    /// that can be classified concurrently, each owning the moved-out
    /// per-lane state of a contiguous chunk of `lanes` plus that chunk's
    /// `records`.
    ///
    /// `lanes`/`records` follow the [`StreamingSession::classify_batch`]
    /// call shape (one record per distinct lane). On `Some`, `records` has
    /// been drained into the partitions and the caller must run every
    /// partition (in any order, on any threads) and then hand all of them
    /// to [`StreamingSession::join_round`] on this same session before
    /// touching any forked lane again. On `None` — the backend does not
    /// support partitioned rounds (the default; window baselines defer
    /// decisions across rounds, so a partition could not be detached), or
    /// splitting is pointless (`parts < 2` after clamping to the lane
    /// count) — `records` is untouched and the caller classifies
    /// atomically.
    ///
    /// The partitioning is a pure function of `(lanes, parts)` — never of
    /// timing — and per-lane decisions depend only on each lane's record
    /// prefix, so a forked round's decisions are bit-identical to the
    /// atomic `classify_batch` over the same round.
    fn fork_round(
        &mut self,
        lanes: &[usize],
        records: &mut Vec<Record>,
        parts: usize,
    ) -> Option<Vec<RoundPartition>> {
        let _ = (lanes, records, parts);
        None
    }

    /// Joins the partitions of one forked round after each has
    /// [`RoundPartition::run`]: restores every moved-out lane state (and
    /// controller) to its session slot and appends the partitions'
    /// decisions to `out` in fork order — the exact sequence the atomic
    /// `classify_batch` would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the session cannot fork (`parts` must come from *this*
    /// session's [`StreamingSession::fork_round`]).
    fn join_round(&mut self, parts: Vec<RoundPartition>, out: &mut Vec<LaneDecision>) {
        let _ = (parts, out);
        // PANIC: unreachable by contract — join_round is only ever called
        // with partitions returned by fork_round, and the default
        // fork_round never returns any.
        unreachable!("join_round on a session that never forks");
    }
}

/// Session shared by the two combined-framework backends: fixed top-`k`
/// ([`CombinedDetector`]) and per-stream dynamic-`k` ([`AdaptiveCombined`]).
struct CombinedSession {
    detector: Arc<CombinedDetector>,
    batch: CombinedBatch,
    /// `Some` in adaptive mode: the controller config plus one controller
    /// per lane.
    adaptive: Option<(DynamicKConfig, Vec<DynamicKController>)>,
    levels: Vec<DetectionLevel>,
    /// Retired [`RoundPartition`]s recycled across forked rounds, so
    /// steady-state splitting reuses their batch scratch instead of
    /// reallocating per round. Cleared on hot-swap (their scratch and
    /// detector handle belong to the outgoing artifact).
    spares: Vec<RoundPartition>,
}

impl CombinedSession {
    fn new(detector: Arc<CombinedDetector>, adaptive: Option<DynamicKConfig>) -> Self {
        CombinedSession {
            batch: detector.begin_batch(),
            adaptive: adaptive.map(|config| (config, Vec::new())),
            detector,
            levels: Vec::new(),
            spares: Vec::new(),
        }
    }
}

impl StreamingSession for CombinedSession {
    fn add_lane(&mut self) -> usize {
        let lane = self.detector.add_lane(&mut self.batch);
        if let Some((config, controllers)) = &mut self.adaptive {
            controllers.push(DynamicKController::new(self.detector.k(), *config));
            debug_assert_eq!(controllers.len(), lane + 1);
        }
        lane
    }

    fn lanes(&self) -> usize {
        self.batch.lanes()
    }

    fn classify_batch(&mut self, lanes: &[usize], records: &[Record], out: &mut Vec<LaneDecision>) {
        // Debug-check the caller's half of the `LaneDecision` ordering
        // contract: one record per *distinct*, in-bounds lane per call.
        // A repeated lane would silently reorder that stream's records
        // within the batch and desynchronize the caller's label FIFOs.
        // (Quadratic scan instead of a seen-bitmap: the check must not
        // allocate, or debug runs of the zero-allocation ingest test would
        // count the checker itself.)
        #[cfg(debug_assertions)]
        for (i, &lane) in lanes.iter().enumerate() {
            assert!(
                lane < self.batch.lanes(),
                "lane {lane} out of bounds ({} lanes)",
                self.batch.lanes()
            );
            assert!(
                !lanes[..i].contains(&lane),
                "lane {lane} repeated within one batch call"
            );
        }
        let emitted_from = out.len();
        self.levels.clear();
        match &mut self.adaptive {
            None => self
                .detector
                .classify_batch(&mut self.batch, lanes, records, &mut self.levels),
            Some((_, controllers)) => self.detector.classify_batch_adaptive(
                &mut self.batch,
                lanes,
                records,
                controllers,
                &mut self.levels,
            ),
        }
        out.extend(
            lanes
                .iter()
                .zip(self.levels.iter())
                .map(|(&lane, level)| LaneDecision {
                    lane,
                    anomalous: level.is_anomalous(),
                }),
        );
        // The provider's half of the contract: an immediate backend
        // resolves exactly one decision per pushed record, in push order.
        debug_assert_eq!(
            out.len() - emitted_from,
            lanes.len(),
            "combined backends decide every record at push time"
        );
    }

    fn finish(&mut self, _out: &mut Vec<LaneDecision>) {
        // Every decision resolves at push time; nothing is pending.
    }

    fn retire_lane(&mut self, lane: usize) -> bool {
        // Same reset `add_lane` performs on a fresh slot, so a stream
        // assigned to the recycled lane classifies bit-identically to a
        // cold start. Decisions resolve at push time, so nothing can be
        // pending on the departing stream.
        self.detector.reset_lane(&mut self.batch, lane);
        if let Some((config, controllers)) = &mut self.adaptive {
            controllers[lane] = DynamicKController::new(self.detector.k(), *config);
        }
        true
    }

    fn swap_combined(&mut self, detector: Arc<CombinedDetector>) -> Result<(), SwapError> {
        let lanes = self.batch.lanes();
        let mut batch = detector.begin_batch();
        for _ in 0..lanes {
            detector.add_lane(&mut batch);
        }
        if let Some((config, controllers)) = &mut self.adaptive {
            *controllers = (0..lanes)
                .map(|_| DynamicKController::new(detector.k(), *config))
                .collect();
        }
        self.batch = batch;
        self.detector = detector;
        // Spare partitions hold the outgoing detector's Arc and scratch
        // sized to its model; retire them rather than mixing artifacts.
        self.spares.clear();
        Ok(())
    }

    fn fork_round(
        &mut self,
        lanes: &[usize],
        records: &mut Vec<Record>,
        parts: usize,
    ) -> Option<Vec<RoundPartition>> {
        assert_eq!(records.len(), lanes.len(), "records/lanes mismatch");
        let parts = parts.min(lanes.len());
        if parts < 2 {
            return None;
        }
        // Same call-shape check as classify_batch: once the round is
        // partitioned, each partition can only verify distinctness within
        // itself, so check the whole round here.
        // Allocation-free distinctness scan, as in `classify_batch` above.
        #[cfg(debug_assertions)]
        for (i, &lane) in lanes.iter().enumerate() {
            assert!(
                lane < self.batch.lanes(),
                "lane {lane} out of bounds ({} lanes)",
                self.batch.lanes()
            );
            assert!(
                !lanes[..i].contains(&lane),
                "lane {lane} repeated within one round"
            );
        }
        // Near-equal contiguous chunks: a pure function of (lanes, parts),
        // so the same round always forks the same way regardless of which
        // threads end up running the partitions.
        let chunk = lanes.len().div_ceil(parts);
        let mut out = Vec::with_capacity(parts);
        let mut moved = records.drain(..);
        for chunk_lanes in lanes.chunks(chunk) {
            let mut p = self
                .spares
                .pop()
                .unwrap_or_else(|| RoundPartition::empty(Arc::clone(&self.detector)));
            for &lane in chunk_lanes {
                p.local.push(p.lanes.len());
                p.lanes.push(lane);
                p.batch.push_lane_state(self.batch.take_lane_state(lane));
                if let Some((config, controllers)) = &mut self.adaptive {
                    // Move the controller out too (placeholder is cheap:
                    // a fresh controller allocates nothing until it
                    // observes ranks).
                    let placeholder = DynamicKController::new(self.detector.k(), *config);
                    p.controllers
                        .push(std::mem::replace(&mut controllers[lane], placeholder));
                }
                // PANIC: records.len() == lanes.len() was asserted above.
                p.records.push(moved.next().expect("one record per lane"));
            }
            out.push(p);
        }
        drop(moved);
        Some(out)
    }

    fn join_round(&mut self, parts: Vec<RoundPartition>, out: &mut Vec<LaneDecision>) {
        for mut p in parts {
            debug_assert_eq!(
                p.levels.len(),
                p.lanes.len(),
                "every partition must have run before the join"
            );
            for (&lane, state) in p.lanes.iter().zip(p.batch.drain_lane_states()) {
                self.batch.restore_lane_state(lane, state);
            }
            if let Some((_, controllers)) = &mut self.adaptive {
                for (&lane, controller) in p.lanes.iter().zip(p.controllers.drain(..)) {
                    controllers[lane] = controller;
                }
            }
            // Partitions arrive in fork order and each one's decisions are
            // in its chunk order, so this extend reproduces the exact
            // decision sequence of the atomic classify_batch.
            out.extend(
                p.lanes
                    .iter()
                    .zip(p.levels.iter())
                    .map(|(&lane, level)| LaneDecision {
                        lane,
                        anomalous: level.is_anomalous(),
                    }),
            );
            p.lanes.clear();
            p.local.clear();
            p.records.clear();
            p.levels.clear();
            self.spares.push(p);
        }
    }
}

impl StreamingDetector for CombinedDetector {
    fn name(&self) -> &str {
        "Combined (BF + LSTM)"
    }

    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession> {
        Box::new(CombinedSession::new(self, None))
    }

    fn supports_hot_swap(&self) -> bool {
        true
    }
}

/// The combined framework with per-stream dynamic-`k` controllers: every
/// lane carries its own [`DynamicKController`] seeded at the detector's
/// commissioned `k`, and decisions follow
/// [`CombinedDetector::classify_batch_adaptive`] — bit-identical to a
/// per-record [`CombinedDetector::classify_adaptive`] loop on each stream.
#[derive(Debug, Clone)]
pub struct AdaptiveCombined {
    detector: Arc<CombinedDetector>,
    config: DynamicKConfig,
}

impl AdaptiveCombined {
    /// Wraps a trained detector with a dynamic-k configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (same contract as
    /// [`DynamicKController::new`]).
    pub fn new(detector: Arc<CombinedDetector>, config: DynamicKConfig) -> Self {
        // Validate the config eagerly (the controller constructor holds the
        // invariants) instead of at first add_lane inside a shard thread.
        let _ = DynamicKController::new(detector.k(), config);
        AdaptiveCombined { detector, config }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Arc<CombinedDetector> {
        &self.detector
    }

    /// The controller configuration applied to every lane.
    pub fn config(&self) -> DynamicKConfig {
        self.config
    }
}

impl StreamingDetector for AdaptiveCombined {
    fn name(&self) -> &str {
        "Combined (BF + LSTM, dynamic k)"
    }

    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession> {
        Box::new(CombinedSession::new(
            Arc::clone(&self.detector),
            Some(self.config),
        ))
    }

    fn supports_hot_swap(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{train_framework, ExperimentConfig};
    use crate::timeseries::TimeSeriesTrainingConfig;
    use icsad_dataset::{DatasetConfig, GasPipelineDataset};

    fn small_detector(seed: u64) -> (Arc<CombinedDetector>, Vec<Record>) {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 5_000,
            seed,
            attack_probability: 0.06,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let trained = train_framework(
            &split,
            &ExperimentConfig {
                timeseries: TimeSeriesTrainingConfig {
                    hidden_dims: vec![12],
                    epochs: 1,
                    seed,
                    ..TimeSeriesTrainingConfig::default()
                },
                ..ExperimentConfig::default()
            },
        )
        .unwrap();
        (Arc::new(trained.detector), split.test().to_vec())
    }

    /// Drives a session over interleaved streams and collects per-stream
    /// decision sequences.
    fn drive(session: &mut dyn StreamingSession, streams: &[&[Record]]) -> Vec<Vec<bool>> {
        let mut results: Vec<Vec<bool>> = streams.iter().map(|_| Vec::new()).collect();
        for _ in streams {
            session.add_lane();
        }
        let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = Vec::new();
        for t in 0..max_len {
            let mut lanes = Vec::new();
            let mut records = Vec::new();
            for (lane, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    records.push(r.clone());
                }
            }
            out.clear();
            session.classify_batch(&lanes, &records, &mut out);
            for d in &out {
                results[d.lane].push(d.anomalous);
            }
        }
        out.clear();
        session.finish(&mut out);
        for d in &out {
            results[d.lane].push(d.anomalous);
        }
        results
    }

    /// Like [`drive`], but classifies every round through
    /// `fork_round`/`join_round` with up to `parts` partitions — running
    /// the partitions in **reverse** order to prove decisions do not
    /// depend on partition execution order. Falls back to the atomic path
    /// when the session declines to fork (round too narrow).
    fn drive_forked(
        session: &mut dyn StreamingSession,
        streams: &[&[Record]],
        parts: usize,
    ) -> Vec<Vec<bool>> {
        let mut results: Vec<Vec<bool>> = streams.iter().map(|_| Vec::new()).collect();
        for _ in streams {
            session.add_lane();
        }
        let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = Vec::new();
        for t in 0..max_len {
            let mut lanes = Vec::new();
            let mut records = Vec::new();
            for (lane, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    records.push(r.clone());
                }
            }
            out.clear();
            match session.fork_round(&lanes, &mut records, parts) {
                Some(mut forked) => {
                    assert!(records.is_empty(), "fork_round drains the records");
                    for p in forked.iter_mut().rev() {
                        p.run();
                    }
                    session.join_round(forked, &mut out);
                }
                None => session.classify_batch(&lanes, &records, &mut out),
            }
            for d in &out {
                results[d.lane].push(d.anomalous);
            }
        }
        out.clear();
        session.finish(&mut out);
        for d in &out {
            results[d.lane].push(d.anomalous);
        }
        results
    }

    /// Slices a capture into `n` round-robin streams.
    fn round_robin(records: &[Record], n: usize) -> Vec<Vec<Record>> {
        let mut streams = vec![Vec::new(); n];
        for (i, r) in records.iter().enumerate() {
            streams[i % n].push(r.clone());
        }
        streams
    }

    #[test]
    fn forked_rounds_match_atomic_rounds_bitwise() {
        let (detector, records) = small_detector(57);
        let streams = round_robin(&records[..600], 7);
        let streams: Vec<&[Record]> = streams.iter().map(|s| s.as_slice()).collect();

        let mut atomic = Arc::clone(&detector).begin_session();
        let reference = drive(atomic.as_mut(), &streams);
        for parts in [2, 3, 5, 16] {
            let mut forked = Arc::clone(&detector).begin_session();
            let split = drive_forked(forked.as_mut(), &streams, parts);
            assert_eq!(split, reference, "parts={parts}");
        }
    }

    #[test]
    fn forked_adaptive_rounds_match_atomic_rounds_bitwise() {
        let (detector, records) = small_detector(58);
        let streams = round_robin(&records[..600], 6);
        let streams: Vec<&[Record]> = streams.iter().map(|s| s.as_slice()).collect();
        let config = DynamicKConfig {
            window: 32,
            ..DynamicKConfig::default()
        };
        let backend = Arc::new(AdaptiveCombined::new(Arc::clone(&detector), config));

        let mut atomic = Arc::clone(&backend).begin_session();
        let reference = drive(atomic.as_mut(), &streams);
        for parts in [2, 3, 6] {
            let mut forked = Arc::clone(&backend).begin_session();
            let split = drive_forked(forked.as_mut(), &streams, parts);
            assert_eq!(split, reference, "parts={parts}");
        }
    }

    #[test]
    fn fork_declines_rounds_too_narrow_to_split() {
        let (detector, records) = small_detector(59);
        let mut session = Arc::clone(&detector).begin_session();
        let lane = session.add_lane();
        let mut round = vec![records[0].clone()];
        assert!(
            session.fork_round(&[lane], &mut round, 4).is_none(),
            "a 1-lane round has nothing to split"
        );
        assert_eq!(round.len(), 1, "records untouched on None");
    }

    #[test]
    fn forking_across_a_swap_matches_cold_start() {
        let (detector_a, records) = small_detector(60);
        let (detector_b, _) = small_detector(61);
        let streams = round_robin(&records[..400], 4);
        let streams: Vec<&[Record]> = streams.iter().map(|s| s.as_slice()).collect();

        // Forked session: half the rounds on A, swap, half on B.
        let halves: Vec<(Vec<Record>, Vec<Record>)> = streams
            .iter()
            .map(|s| {
                let mid = s.len() / 2;
                (s[..mid].to_vec(), s[mid..].to_vec())
            })
            .collect();
        let first: Vec<&[Record]> = halves.iter().map(|(a, _)| a.as_slice()).collect();
        let second: Vec<&[Record]> = halves.iter().map(|(_, b)| b.as_slice()).collect();

        let mut session = Arc::clone(&detector_a).begin_session();
        let _ = drive_forked(session.as_mut(), &first, 3);
        session.swap_combined(Arc::clone(&detector_b)).unwrap();
        // Post-swap forks build fresh partitions against detector B (the
        // spare pool was retired with A); decisions must match a cold
        // session on B.
        let mut out = Vec::new();
        let max_len = second.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut results: Vec<Vec<bool>> = second.iter().map(|_| Vec::new()).collect();
        for t in 0..max_len {
            let mut lanes = Vec::new();
            let mut records = Vec::new();
            for (lane, stream) in second.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    records.push(r.clone());
                }
            }
            out.clear();
            match session.fork_round(&lanes, &mut records, 2) {
                Some(mut forked) => {
                    for p in forked.iter_mut() {
                        p.run();
                    }
                    session.join_round(forked, &mut out);
                }
                None => session.classify_batch(&lanes, &records, &mut out),
            }
            for d in &out {
                results[d.lane].push(d.anomalous);
            }
        }

        let mut cold = Arc::clone(&detector_b).begin_session();
        let reference = drive(cold.as_mut(), &second);
        assert_eq!(results, reference);
    }

    #[test]
    fn combined_session_matches_per_record_classify() {
        let (detector, records) = small_detector(51);
        let half = records.len() / 2;
        let streams: Vec<&[Record]> = vec![&records[..half], &records[half..]];

        let mut session = Arc::clone(&detector).begin_session();
        let sessions = drive(session.as_mut(), &streams);

        for (stream, session_decisions) in streams.iter().zip(sessions.iter()) {
            let mut state = detector.begin();
            let reference: Vec<bool> = stream
                .iter()
                .map(|r| detector.classify(&mut state, r).is_anomalous())
                .collect();
            assert_eq!(session_decisions, &reference);
        }
    }

    #[test]
    fn adaptive_session_matches_per_record_classify_adaptive() {
        let (detector, records) = small_detector(52);
        let third = records.len() / 3;
        let streams: Vec<&[Record]> = vec![
            &records[..third],
            &records[third..2 * third + 5],
            &records[2 * third + 5..],
        ];
        let config = DynamicKConfig {
            window: 64,
            ..DynamicKConfig::default()
        };

        let backend = Arc::new(AdaptiveCombined::new(Arc::clone(&detector), config));
        assert!(backend.supports_hot_swap());
        let mut session = backend.begin_session();
        let sessions = drive(session.as_mut(), &streams);

        for (stream, session_decisions) in streams.iter().zip(sessions.iter()) {
            let mut state = detector.begin();
            let mut controller = DynamicKController::new(detector.k(), config);
            let reference: Vec<bool> = stream
                .iter()
                .map(|r| {
                    detector
                        .classify_adaptive(&mut state, &mut controller, r)
                        .is_anomalous()
                })
                .collect();
            assert_eq!(session_decisions, &reference);
        }
    }

    /// The `LaneDecision` ordering contract's call-shape half: a repeated
    /// lane within one call would reorder that stream's records and is
    /// rejected (debug builds only — the guard compiles out in release,
    /// so these tests do too).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "repeated within one batch call")]
    fn duplicate_lanes_within_a_call_are_rejected_in_debug() {
        let (detector, records) = small_detector(55);
        let mut session = detector.begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        session.classify_batch(
            &[lane, lane],
            &[records[0].clone(), records[1].clone()],
            &mut out,
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lane_is_rejected_in_debug() {
        let (detector, records) = small_detector(56);
        let mut session = detector.begin_session();
        let _ = session.add_lane();
        let mut out = Vec::new();
        session.classify_batch(&[3], std::slice::from_ref(&records[0]), &mut out);
    }

    #[test]
    fn retired_lane_reused_matches_cold_start() {
        let (detector, records) = small_detector(62);
        let (first, second) = records.split_at(records.len() / 2);

        // Drive a stream to some warm state, retire its lane, then run a
        // different stream on the recycled slot.
        let mut session = Arc::clone(&detector).begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        for r in first {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        assert!(session.retire_lane(lane), "combined backends recycle lanes");
        assert_eq!(session.lanes(), 1, "lane indices survive retirement");
        out.clear();
        for r in second {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        let recycled: Vec<bool> = out.iter().map(|d| d.anomalous).collect();

        // Cold reference: the second stream from scratch.
        let mut state = detector.begin();
        let reference: Vec<bool> = second
            .iter()
            .map(|r| detector.classify(&mut state, r).is_anomalous())
            .collect();
        assert_eq!(recycled, reference);
    }

    #[test]
    fn retired_adaptive_lane_reused_matches_cold_start() {
        let (detector, records) = small_detector(63);
        let (first, second) = records.split_at(records.len() / 2);
        let config = DynamicKConfig {
            window: 32,
            ..DynamicKConfig::default()
        };
        let backend = Arc::new(AdaptiveCombined::new(Arc::clone(&detector), config));

        let mut session = Arc::clone(&backend).begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        for r in first {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        assert!(session.retire_lane(lane));
        out.clear();
        for r in second {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        let recycled: Vec<bool> = out.iter().map(|d| d.anomalous).collect();

        // Cold reference: fresh state *and* fresh dynamic-k controller.
        let mut state = detector.begin();
        let mut controller = DynamicKController::new(detector.k(), config);
        let reference: Vec<bool> = second
            .iter()
            .map(|r| {
                detector
                    .classify_adaptive(&mut state, &mut controller, r)
                    .is_anomalous()
            })
            .collect();
        assert_eq!(recycled, reference);
    }

    #[test]
    fn swap_resets_lanes_to_cold_state() {
        let (detector_a, records) = small_detector(53);
        let (detector_b, _) = small_detector(54);
        let (first, second) = records.split_at(records.len() / 2);

        let mut session = Arc::clone(&detector_a).begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        for r in first {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        out.clear();
        session.swap_combined(Arc::clone(&detector_b)).unwrap();
        assert_eq!(session.lanes(), 1, "lane indices survive the swap");
        for r in second {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        let swapped: Vec<bool> = out.iter().map(|d| d.anomalous).collect();

        // Cold reference: detector B from scratch on the post-swap stream.
        let mut state = detector_b.begin();
        let reference: Vec<bool> = second
            .iter()
            .map(|r| detector_b.classify(&mut state, r).is_anomalous())
            .collect();
        assert_eq!(swapped, reference);
    }
}
