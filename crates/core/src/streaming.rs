//! The streaming backend abstraction: pluggable detectors for the engine.
//!
//! The offline [`Detector`](crate::Detector) trait answers "which packages
//! of this finished capture are anomalous?". An *online* monitor needs the
//! same question answered incrementally, over many interleaved streams at
//! once, which adds three requirements the offline trait cannot express:
//!
//! * **per-stream state** — each monitored PLC carries its own detector
//!   state (LSTM state, dynamic-k controller, window buffer),
//! * **batched stepping** — the engine advances many streams per round and
//!   wants one matrix–matrix LSTM step, not one matrix–vector step per
//!   stream,
//! * **deferred decisions** — window models (the Table IV baselines) can
//!   only judge a package once its window completes, so a decision may
//!   resolve several rounds after its package was pushed.
//!
//! [`StreamingDetector`] + [`StreamingSession`] pin that contract down.
//! Three backend families implement it:
//!
//! | backend | built on | decisions |
//! |---|---|---|
//! | [`CombinedDetector`] | `classify_batch` | immediate, fixed top-`k` |
//! | [`AdaptiveCombined`] | `classify_batch_adaptive` | immediate, per-stream dynamic `k` |
//! | `icsad_baselines::stream::WindowedBackend` | §VIII-C window protocol | deferred per window |
//!
//! Sessions hosting a [`CombinedDetector`] additionally support
//! **hot-reload** ([`StreamingSession::swap_combined`]): a freshly
//! commissioned artifact replaces the running detector at a round boundary,
//! resetting every lane's stream state — the engine builds its
//! `swap_artifact` path on this.

use std::sync::Arc;

use icsad_dataset::Record;

use crate::combined::{CombinedBatch, CombinedDetector, DetectionLevel};
use crate::dynamic_k::{DynamicKConfig, DynamicKController};

/// One resolved per-package decision, attributed to a session lane.
///
/// Backends that decide immediately emit one `LaneDecision` per record
/// pushed; window backends emit none until a lane's window completes, then
/// one per buffered record.
///
/// # Ordering contract
///
/// Within a lane, decisions always resolve **in the order the records were
/// pushed**, and the decision for a record depends only on that lane's
/// record prefix — never on which other lanes shared its batch, how calls
/// were sized, or when `classify_batch` ran. This is the invariant that
/// lets the engine pair decisions with labels through plain per-lane
/// FIFOs, and the reason its async runtime can reschedule, steal and
/// re-batch work freely while staying bit-identical to the per-record
/// path (pinned by the engine's deterministic-interleaving property
/// tests). Implementations are checked against the call-shape half of the
/// contract by debug assertions in [`StreamingSession::classify_batch`]
/// implementations (distinct, in-bounds lanes per call; immediate backends
/// emit exactly one in-order decision per pushed record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneDecision {
    /// The session lane (stream) the decision belongs to.
    pub lane: usize,
    /// `true` = anomalous.
    pub anomalous: bool,
}

/// Why a [`StreamingSession::swap_combined`] hot-reload was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The session's backend does not host a [`CombinedDetector`] (e.g. a
    /// window baseline), so there is nothing an `ICSA` artifact could
    /// replace.
    UnsupportedBackend {
        /// Display name of the refusing backend.
        backend: String,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnsupportedBackend { backend } => {
                write!(f, "backend {backend:?} does not support hot-reload")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// A streaming anomaly-detection backend: the factory for per-shard
/// [`StreamingSession`]s.
///
/// A backend is immutable shared configuration (trained model, window
/// width, dynamic-k bounds); all mutable per-stream state lives in the
/// sessions it opens. One backend is typically shared by every shard of an
/// engine via `Arc`.
pub trait StreamingDetector: Send + Sync {
    /// Short display name (mirrors [`Detector::name`](crate::Detector::name)
    /// for backends that also implement the offline trait).
    fn name(&self) -> &str;

    /// Opens a fresh session with no lanes; add one lane per stream with
    /// [`StreamingSession::add_lane`].
    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession>;

    /// Whether sessions opened by this backend accept
    /// [`StreamingSession::swap_combined`] (hot-reload from an `ICSA`
    /// artifact). `false` unless the backend hosts a [`CombinedDetector`].
    fn supports_hot_swap(&self) -> bool {
        false
    }
}

/// Mutable per-shard state of a [`StreamingDetector`]: a set of independent
/// stream lanes stepped in batches.
pub trait StreamingSession: Send {
    /// Adds a fresh stream lane and returns its index.
    fn add_lane(&mut self) -> usize;

    /// Number of lanes added so far.
    fn lanes(&self) -> usize;

    /// Steps one record per *distinct* lane: `records[i]` is the next
    /// package of the stream on lane `lanes[i]`. Every decision that
    /// becomes resolvable — possibly none, possibly covering records pushed
    /// in earlier calls — is appended to `out`; per lane, decisions resolve
    /// in push order.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != lanes.len()` or a lane index is out of
    /// bounds. Lanes must not repeat within one call.
    fn classify_batch(&mut self, lanes: &[usize], records: &[Record], out: &mut Vec<LaneDecision>);

    /// End of stream: resolves every still-pending decision (window
    /// backends pass trailing partial windows as normal, mirroring the
    /// offline `windowed_decisions` protocol; immediate backends have
    /// nothing pending).
    fn finish(&mut self, out: &mut Vec<LaneDecision>);

    /// Hot-reload: installs a newly commissioned [`CombinedDetector`],
    /// resetting every lane to a fresh stream state (LSTM state, rolling
    /// prediction and dynamic-k controller all restart — the swap point is
    /// a per-stream re-commissioning boundary). Lane indices remain valid.
    ///
    /// Contract for implementers that accept the swap: no decision may be
    /// left deferred across it — the engine calls
    /// [`StreamingSession::finish`] immediately before swapping (ending
    /// the pre-swap streams exactly like a shutdown), and after `finish`
    /// every record pushed so far must have resolved, or post-swap
    /// decisions would be paired with stale pre-swap packages.
    ///
    /// Backends not built on the combined framework refuse with
    /// [`SwapError::UnsupportedBackend`]; see
    /// [`StreamingDetector::supports_hot_swap`].
    fn swap_combined(&mut self, detector: Arc<CombinedDetector>) -> Result<(), SwapError>;
}

/// Session shared by the two combined-framework backends: fixed top-`k`
/// ([`CombinedDetector`]) and per-stream dynamic-`k` ([`AdaptiveCombined`]).
struct CombinedSession {
    detector: Arc<CombinedDetector>,
    batch: CombinedBatch,
    /// `Some` in adaptive mode: the controller config plus one controller
    /// per lane.
    adaptive: Option<(DynamicKConfig, Vec<DynamicKController>)>,
    levels: Vec<DetectionLevel>,
}

impl CombinedSession {
    fn new(detector: Arc<CombinedDetector>, adaptive: Option<DynamicKConfig>) -> Self {
        CombinedSession {
            batch: detector.begin_batch(),
            adaptive: adaptive.map(|config| (config, Vec::new())),
            detector,
            levels: Vec::new(),
        }
    }
}

impl StreamingSession for CombinedSession {
    fn add_lane(&mut self) -> usize {
        let lane = self.detector.add_lane(&mut self.batch);
        if let Some((config, controllers)) = &mut self.adaptive {
            controllers.push(DynamicKController::new(self.detector.k(), *config));
            debug_assert_eq!(controllers.len(), lane + 1);
        }
        lane
    }

    fn lanes(&self) -> usize {
        self.batch.lanes()
    }

    fn classify_batch(&mut self, lanes: &[usize], records: &[Record], out: &mut Vec<LaneDecision>) {
        // Debug-check the caller's half of the `LaneDecision` ordering
        // contract: one record per *distinct*, in-bounds lane per call.
        // A repeated lane would silently reorder that stream's records
        // within the batch and desynchronize the caller's label FIFOs.
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.batch.lanes()];
            for &lane in lanes {
                assert!(
                    lane < seen.len(),
                    "lane {lane} out of bounds ({} lanes)",
                    seen.len()
                );
                assert!(!seen[lane], "lane {lane} repeated within one batch call");
                seen[lane] = true;
            }
        }
        let emitted_from = out.len();
        self.levels.clear();
        match &mut self.adaptive {
            None => self
                .detector
                .classify_batch(&mut self.batch, lanes, records, &mut self.levels),
            Some((_, controllers)) => self.detector.classify_batch_adaptive(
                &mut self.batch,
                lanes,
                records,
                controllers,
                &mut self.levels,
            ),
        }
        out.extend(
            lanes
                .iter()
                .zip(self.levels.iter())
                .map(|(&lane, level)| LaneDecision {
                    lane,
                    anomalous: level.is_anomalous(),
                }),
        );
        // The provider's half of the contract: an immediate backend
        // resolves exactly one decision per pushed record, in push order.
        debug_assert_eq!(
            out.len() - emitted_from,
            lanes.len(),
            "combined backends decide every record at push time"
        );
    }

    fn finish(&mut self, _out: &mut Vec<LaneDecision>) {
        // Every decision resolves at push time; nothing is pending.
    }

    fn swap_combined(&mut self, detector: Arc<CombinedDetector>) -> Result<(), SwapError> {
        let lanes = self.batch.lanes();
        let mut batch = detector.begin_batch();
        for _ in 0..lanes {
            detector.add_lane(&mut batch);
        }
        if let Some((config, controllers)) = &mut self.adaptive {
            *controllers = (0..lanes)
                .map(|_| DynamicKController::new(detector.k(), *config))
                .collect();
        }
        self.batch = batch;
        self.detector = detector;
        Ok(())
    }
}

impl StreamingDetector for CombinedDetector {
    fn name(&self) -> &str {
        "Combined (BF + LSTM)"
    }

    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession> {
        Box::new(CombinedSession::new(self, None))
    }

    fn supports_hot_swap(&self) -> bool {
        true
    }
}

/// The combined framework with per-stream dynamic-`k` controllers: every
/// lane carries its own [`DynamicKController`] seeded at the detector's
/// commissioned `k`, and decisions follow
/// [`CombinedDetector::classify_batch_adaptive`] — bit-identical to a
/// per-record [`CombinedDetector::classify_adaptive`] loop on each stream.
#[derive(Debug, Clone)]
pub struct AdaptiveCombined {
    detector: Arc<CombinedDetector>,
    config: DynamicKConfig,
}

impl AdaptiveCombined {
    /// Wraps a trained detector with a dynamic-k configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (same contract as
    /// [`DynamicKController::new`]).
    pub fn new(detector: Arc<CombinedDetector>, config: DynamicKConfig) -> Self {
        // Validate the config eagerly (the controller constructor holds the
        // invariants) instead of at first add_lane inside a shard thread.
        let _ = DynamicKController::new(detector.k(), config);
        AdaptiveCombined { detector, config }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Arc<CombinedDetector> {
        &self.detector
    }

    /// The controller configuration applied to every lane.
    pub fn config(&self) -> DynamicKConfig {
        self.config
    }
}

impl StreamingDetector for AdaptiveCombined {
    fn name(&self) -> &str {
        "Combined (BF + LSTM, dynamic k)"
    }

    fn begin_session(self: Arc<Self>) -> Box<dyn StreamingSession> {
        Box::new(CombinedSession::new(
            Arc::clone(&self.detector),
            Some(self.config),
        ))
    }

    fn supports_hot_swap(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{train_framework, ExperimentConfig};
    use crate::timeseries::TimeSeriesTrainingConfig;
    use icsad_dataset::{DatasetConfig, GasPipelineDataset};

    fn small_detector(seed: u64) -> (Arc<CombinedDetector>, Vec<Record>) {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 5_000,
            seed,
            attack_probability: 0.06,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let trained = train_framework(
            &split,
            &ExperimentConfig {
                timeseries: TimeSeriesTrainingConfig {
                    hidden_dims: vec![12],
                    epochs: 1,
                    seed,
                    ..TimeSeriesTrainingConfig::default()
                },
                ..ExperimentConfig::default()
            },
        )
        .unwrap();
        (Arc::new(trained.detector), split.test().to_vec())
    }

    /// Drives a session over interleaved streams and collects per-stream
    /// decision sequences.
    fn drive(session: &mut dyn StreamingSession, streams: &[&[Record]]) -> Vec<Vec<bool>> {
        let mut results: Vec<Vec<bool>> = streams.iter().map(|_| Vec::new()).collect();
        for _ in streams {
            session.add_lane();
        }
        let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = Vec::new();
        for t in 0..max_len {
            let mut lanes = Vec::new();
            let mut records = Vec::new();
            for (lane, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    records.push(r.clone());
                }
            }
            out.clear();
            session.classify_batch(&lanes, &records, &mut out);
            for d in &out {
                results[d.lane].push(d.anomalous);
            }
        }
        out.clear();
        session.finish(&mut out);
        for d in &out {
            results[d.lane].push(d.anomalous);
        }
        results
    }

    #[test]
    fn combined_session_matches_per_record_classify() {
        let (detector, records) = small_detector(51);
        let half = records.len() / 2;
        let streams: Vec<&[Record]> = vec![&records[..half], &records[half..]];

        let mut session = Arc::clone(&detector).begin_session();
        let sessions = drive(session.as_mut(), &streams);

        for (stream, session_decisions) in streams.iter().zip(sessions.iter()) {
            let mut state = detector.begin();
            let reference: Vec<bool> = stream
                .iter()
                .map(|r| detector.classify(&mut state, r).is_anomalous())
                .collect();
            assert_eq!(session_decisions, &reference);
        }
    }

    #[test]
    fn adaptive_session_matches_per_record_classify_adaptive() {
        let (detector, records) = small_detector(52);
        let third = records.len() / 3;
        let streams: Vec<&[Record]> = vec![
            &records[..third],
            &records[third..2 * third + 5],
            &records[2 * third + 5..],
        ];
        let config = DynamicKConfig {
            window: 64,
            ..DynamicKConfig::default()
        };

        let backend = Arc::new(AdaptiveCombined::new(Arc::clone(&detector), config));
        assert!(backend.supports_hot_swap());
        let mut session = backend.begin_session();
        let sessions = drive(session.as_mut(), &streams);

        for (stream, session_decisions) in streams.iter().zip(sessions.iter()) {
            let mut state = detector.begin();
            let mut controller = DynamicKController::new(detector.k(), config);
            let reference: Vec<bool> = stream
                .iter()
                .map(|r| {
                    detector
                        .classify_adaptive(&mut state, &mut controller, r)
                        .is_anomalous()
                })
                .collect();
            assert_eq!(session_decisions, &reference);
        }
    }

    /// The `LaneDecision` ordering contract's call-shape half: a repeated
    /// lane within one call would reorder that stream's records and is
    /// rejected (debug builds only — the guard compiles out in release,
    /// so these tests do too).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "repeated within one batch call")]
    fn duplicate_lanes_within_a_call_are_rejected_in_debug() {
        let (detector, records) = small_detector(55);
        let mut session = detector.begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        session.classify_batch(
            &[lane, lane],
            &[records[0].clone(), records[1].clone()],
            &mut out,
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lane_is_rejected_in_debug() {
        let (detector, records) = small_detector(56);
        let mut session = detector.begin_session();
        let _ = session.add_lane();
        let mut out = Vec::new();
        session.classify_batch(&[3], std::slice::from_ref(&records[0]), &mut out);
    }

    #[test]
    fn swap_resets_lanes_to_cold_state() {
        let (detector_a, records) = small_detector(53);
        let (detector_b, _) = small_detector(54);
        let (first, second) = records.split_at(records.len() / 2);

        let mut session = Arc::clone(&detector_a).begin_session();
        let lane = session.add_lane();
        let mut out = Vec::new();
        for r in first {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        out.clear();
        session.swap_combined(Arc::clone(&detector_b)).unwrap();
        assert_eq!(session.lanes(), 1, "lane indices survive the swap");
        for r in second {
            session.classify_batch(&[lane], std::slice::from_ref(r), &mut out);
        }
        let swapped: Vec<bool> = out.iter().map(|d| d.anomalous).collect();

        // Cold reference: detector B from scratch on the post-swap stream.
        let mut state = detector_b.begin();
        let reference: Vec<bool> = second
            .iter()
            .map(|r| detector_b.classify(&mut state, r).is_anomalous())
            .collect();
        assert_eq!(swapped, reference);
    }
}
