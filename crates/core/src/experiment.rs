//! The end-to-end train–validate pipeline (paper §VIII-A): fit the
//! discretizer, build the signature database, train both detector levels,
//! and choose `k` on the validation set.

use icsad_dataset::Split;
use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};
use icsad_nn::EpochStats;

use crate::combined::CombinedDetector;
use crate::error::CoreError;
use crate::metrics::ClassificationReport;
use crate::package::PackageLevelDetector;
use crate::timeseries::{TimeSeriesDetector, TimeSeriesTrainingConfig};

/// Full framework training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Feature discretization granularities (Table III).
    pub discretization: DiscretizationConfig,
    /// Bloom filter internal false-positive budget.
    pub bloom_fpr: f64,
    /// Time-series detector training.
    pub timeseries: TimeSeriesTrainingConfig,
    /// Acceptable false-positive budget θ for choosing `k` (paper: 0.05).
    pub theta_k: f64,
    /// Largest `k` considered by the choice-of-`k` search.
    pub max_k: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            discretization: DiscretizationConfig::paper_defaults(),
            bloom_fpr: 0.001,
            timeseries: TimeSeriesTrainingConfig::default(),
            theta_k: 0.05,
            max_k: 10,
        }
    }
}

impl ExperimentConfig {
    /// A configuration sized for CI-style runs: a small LSTM and few
    /// epochs. Detection quality is lower than the default but training
    /// takes seconds.
    pub fn fast() -> Self {
        ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![32],
                epochs: 6,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        }
    }

    /// The paper's architecture (2×256 LSTM, 50 epochs). Slow.
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig::paper_scale(),
            ..ExperimentConfig::default()
        }
    }
}

/// A trained framework plus everything produced along the way.
#[derive(Debug, Clone)]
pub struct TrainedFramework {
    /// The assembled two-level detector.
    pub detector: CombinedDetector,
    /// The `k` chosen on the validation set.
    pub chosen_k: usize,
    /// Top-`k` validation error curve (`err_1..=err_max_k`, Fig. 6).
    pub validation_topk_curve: Vec<f64>,
    /// Per-epoch training statistics of the LSTM.
    pub training_stats: Vec<EpochStats>,
    /// Size of the signature database (`|S|`).
    pub signature_count: usize,
}

impl TrainedFramework {
    /// Evaluates the framework on labelled records.
    pub fn evaluate(&self, records: &[icsad_dataset::Record]) -> ClassificationReport {
        self.detector.evaluate(records)
    }
}

/// Trains the full framework on a dataset split per the paper's §VIII-A
/// protocol.
///
/// # Errors
///
/// Propagates feature-engineering and training failures.
pub fn train_framework(
    split: &Split,
    config: &ExperimentConfig,
) -> Result<TrainedFramework, CoreError> {
    let discretizer = Discretizer::fit(&config.discretization, split.train().records())?;
    let vocabulary = SignatureVocabulary::build(&discretizer, split.train().records());
    let package = PackageLevelDetector::train(&discretizer, &vocabulary, config.bloom_fpr)?;
    let (mut timeseries, training_stats) =
        TimeSeriesDetector::train(&discretizer, &vocabulary, split.train(), &config.timeseries)?;
    let validation_topk_curve = timeseries.top_k_error_curve(split.validation(), config.max_k);
    let chosen_k = timeseries.choose_k(split.validation(), config.theta_k, config.max_k);
    let signature_count = vocabulary.len();
    Ok(TrainedFramework {
        detector: CombinedDetector::new(package, timeseries),
        chosen_k,
        validation_topk_curve,
        training_stats,
        signature_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icsad_dataset::{DatasetConfig, GasPipelineDataset};

    fn split(total: usize, seed: u64) -> icsad_dataset::Split {
        GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed,
            attack_probability: 0.08,
            ..DatasetConfig::default()
        })
        .split_chronological(0.6, 0.2)
    }

    fn tiny_config(epochs: usize) -> ExperimentConfig {
        ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![24],
                epochs,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_working_detector() {
        let split = split(10_000, 1);
        let trained = train_framework(&split, &tiny_config(5)).unwrap();
        assert!(trained.chosen_k >= 1 && trained.chosen_k <= 10);
        assert_eq!(trained.detector.k(), trained.chosen_k);
        assert_eq!(trained.validation_topk_curve.len(), 10);
        assert_eq!(trained.training_stats.len(), 5);
        assert!(trained.signature_count > 10);

        let report = trained.evaluate(split.test());
        assert!(report.confusion.total() as usize == split.test().len());
        assert!(report.recall() > 0.3);
    }

    #[test]
    fn chosen_k_satisfies_theta_when_possible() {
        let split = split(10_000, 2);
        let config = tiny_config(6);
        let trained = train_framework(&split, &config).unwrap();
        let k = trained.chosen_k;
        if trained
            .validation_topk_curve
            .iter()
            .any(|&e| e < config.theta_k)
        {
            assert!(trained.validation_topk_curve[k - 1] < config.theta_k);
        } else {
            assert_eq!(k, config.max_k);
        }
    }

    #[test]
    fn fast_config_is_usable() {
        let split = split(8_000, 3);
        let trained = train_framework(&split, &ExperimentConfig::fast()).unwrap();
        let report = trained.evaluate(split.test());
        // Small capture => weak absolute numbers; see EXPERIMENTS.md for
        // the paper-scale reproduction.
        assert!(report.f1_score() > 0.2, "f1 {}", report.f1_score());
    }
}
