//! The package-level anomaly detector (paper §IV): the signature database
//! of normal packages stored in a Bloom filter.

use icsad_bloom::BloomFilter;
use icsad_dataset::Record;
use icsad_features::{Discretizer, Signature, SignatureVocabulary};

use crate::error::CoreError;

/// Bloom-filter package-level detector.
///
/// Detection function (paper §IV-C):
///
/// ```text
/// F_p(x) = 1  if s(x) ∉ B
///          0  otherwise
/// ```
///
/// Because the Bloom filter has no false negatives, every signature stored
/// during training always passes; only genuinely novel signatures (plus a
/// controlled rate of hash collisions) change the answer.
#[derive(Debug, Clone)]
pub struct PackageLevelDetector {
    discretizer: Discretizer,
    filter: BloomFilter,
    signature_count: usize,
}

impl PackageLevelDetector {
    /// Builds the detector from a fitted discretizer and the signature
    /// database of normal traffic.
    ///
    /// `bloom_fpr` is the Bloom filter's internal false-positive budget;
    /// note the inversion of roles: a Bloom false positive makes an
    /// *anomalous* package look normal, so it costs detection recall, not
    /// detector precision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTrainingData`] for an empty vocabulary
    /// and [`CoreError::Bloom`] for invalid filter parameters.
    pub fn train(
        discretizer: &Discretizer,
        vocabulary: &SignatureVocabulary,
        bloom_fpr: f64,
    ) -> Result<Self, CoreError> {
        if vocabulary.is_empty() {
            return Err(CoreError::InvalidTrainingData {
                reason: "signature vocabulary is empty".into(),
            });
        }
        let mut filter = BloomFilter::with_capacity(vocabulary.len(), bloom_fpr)?;
        for (_, sig, _) in vocabulary.iter() {
            filter.insert(sig);
        }
        Ok(PackageLevelDetector {
            discretizer: discretizer.clone(),
            filter,
            signature_count: vocabulary.len(),
        })
    }

    /// Reassembles a trained detector from its serialized parts (the
    /// artifact load path; see [`crate::artifact`]).
    pub(crate) fn from_parts(
        discretizer: Discretizer,
        filter: BloomFilter,
        signature_count: usize,
    ) -> Result<Self, String> {
        if signature_count == 0 {
            return Err("signature database is empty".into());
        }
        // Training inserts each distinct signature exactly once, so a
        // filter whose insertion count disagrees with the vocabulary was
        // built over a different signature database.
        if filter.len() != signature_count as u64 {
            return Err(format!(
                "bloom filter holds {} insertions but the vocabulary holds {} signatures",
                filter.len(),
                signature_count
            ));
        }
        Ok(PackageLevelDetector {
            discretizer,
            filter,
            signature_count,
        })
    }

    /// The Bloom filter holding the signature database.
    pub(crate) fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// The fitted discretizer.
    pub fn discretizer(&self) -> &Discretizer {
        &self.discretizer
    }

    /// Number of distinct signatures stored.
    pub fn signature_count(&self) -> usize {
        self.signature_count
    }

    /// Bloom filter memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.filter.memory_bytes()
    }

    /// Tests a pre-computed signature against the database.
    pub fn signature_is_anomalous(&self, signature: &Signature) -> bool {
        !self.filter.contains(signature)
    }

    /// Tests a raw signature key (see [`icsad_features::write_signature`])
    /// against the database — the allocation-free twin of
    /// [`PackageLevelDetector::signature_is_anomalous`] used by the batched
    /// and streaming hot paths.
    pub fn key_is_anomalous(&self, key: &str) -> bool {
        !self.filter.contains(key)
    }

    /// Classifies one package: `true` = anomalous (`F_p(x) = 1`).
    pub fn is_anomalous(&self, record: &Record) -> bool {
        self.signature_is_anomalous(&self.discretizer.signature(record))
    }

    /// Discretizes and classifies in one pass, returning the signature for
    /// reuse by the time-series level.
    pub fn check(&self, record: &Record) -> (Signature, bool) {
        let sig = self.discretizer.signature(record);
        let anomalous = self.signature_is_anomalous(&sig);
        (sig, anomalous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icsad_dataset::{DatasetConfig, GasPipelineDataset, Split};
    use icsad_features::DiscretizationConfig;

    fn setup(total: usize, seed: u64, attack_probability: f64) -> (PackageLevelDetector, Split) {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed,
            attack_probability,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let disc = Discretizer::fit(
            &DiscretizationConfig::paper_defaults(),
            split.train().records(),
        )
        .unwrap();
        let vocab = SignatureVocabulary::build(&disc, split.train().records());
        let det = PackageLevelDetector::train(&disc, &vocab, 0.001).unwrap();
        (det, split)
    }

    #[test]
    fn training_packages_always_pass() {
        let (det, split) = setup(8_000, 1, 0.1);
        for r in split.train().records() {
            assert!(!det.is_anomalous(r), "training package flagged");
        }
    }

    #[test]
    fn validation_false_positive_rate_is_low() {
        let (det, split) = setup(60_000, 2, 0.05);
        let fp = split
            .validation()
            .records()
            .iter()
            .filter(|r| det.is_anomalous(r))
            .count();
        let rate = fp as f64 / split.validation().len() as f64;
        assert!(rate < 0.05, "validation fp rate {rate}");
    }

    #[test]
    fn detects_novel_signatures() {
        let (det, split) = setup(20_000, 3, 0.15);
        let mut detected = 0usize;
        let mut attacks = 0usize;
        for r in split.test() {
            if r.is_attack() {
                attacks += 1;
                if det.is_anomalous(r) {
                    detected += 1;
                }
            }
        }
        assert!(attacks > 100);
        let recall = detected as f64 / attacks as f64;
        assert!(
            recall > 0.3,
            "package-level recall {recall} implausibly low"
        );
    }

    #[test]
    fn mfci_and_recon_are_caught_at_package_level() {
        // These attacks use unknown function codes / addresses, which the
        // signature database can never contain (paper Table V: ratio 1.0).
        let (det, split) = setup(30_000, 4, 0.15);
        let mut missed = 0usize;
        let mut seen = 0usize;
        use icsad_simulator::AttackType;
        for r in split.test() {
            if matches!(r.label, Some(AttackType::Mfci | AttackType::Recon)) {
                seen += 1;
                if !det.is_anomalous(r) {
                    missed += 1;
                }
            }
        }
        assert!(seen > 0, "need MFCI/Recon packages in the test set");
        assert!(
            (missed as f64) < 0.02 * seen as f64 + 2.0,
            "missed {missed}/{seen} MFCI/Recon packages"
        );
    }

    #[test]
    fn check_returns_signature_consistent_with_classification() {
        let (det, split) = setup(4_000, 5, 0.1);
        for r in split.test().iter().take(200) {
            let (sig, anomalous) = det.check(r);
            assert_eq!(anomalous, det.signature_is_anomalous(&sig));
            assert_eq!(anomalous, det.is_anomalous(r));
        }
    }

    #[test]
    fn memory_is_small() {
        let (det, _) = setup(8_000, 6, 0.1);
        // The paper reports 684 KB for both models; the Bloom filter alone
        // is tiny.
        assert!(det.memory_bytes() < 64 * 1024);
        assert!(det.signature_count() > 0);
    }

    #[test]
    fn empty_vocabulary_rejected() {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 1_000,
            seed: 7,
            attack_probability: 0.0,
            ..DatasetConfig::default()
        });
        let disc =
            Discretizer::fit(&DiscretizationConfig::paper_defaults(), data.records()).unwrap();
        let vocab = SignatureVocabulary::default();
        assert!(matches!(
            PackageLevelDetector::train(&disc, &vocab, 0.01),
            Err(CoreError::InvalidTrainingData { .. })
        ));
    }
}
