//! The combined anomaly detection framework (paper §VI, Fig. 3).

use icsad_dataset::Record;
use icsad_features::DiscreteVector;
use icsad_simulator::AttackType;

use crate::dynamic_k::DynamicKController;
use crate::metrics::ClassificationReport;
use crate::package::PackageLevelDetector;
use crate::timeseries::{TimeSeriesDetector, TsBatchScratch, TsState};

/// Which level of the framework flagged a package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionLevel {
    /// The package passed both levels.
    Normal,
    /// Flagged by the Bloom-filter package-level detector.
    PackageLevel,
    /// Flagged by the LSTM time-series-level detector.
    TimeSeriesLevel,
}

impl DetectionLevel {
    /// `true` for either anomaly level.
    pub fn is_anomalous(self) -> bool {
        !matches!(self, DetectionLevel::Normal)
    }
}

/// The combined two-level detector.
///
/// Per Fig. 3: a package is first checked against the Bloom filter; a miss
/// is immediately an anomaly (its signature cannot be in the top-k of the
/// time-series prediction either, because the prediction only ranks
/// database signatures). Packages that pass are checked by the LSTM top-`k`
/// rule. *Every* package — normal or anomalous — is fed back into the LSTM
/// input with its anomaly bit set accordingly (§V-3).
#[derive(Debug, Clone)]
pub struct CombinedDetector {
    package: PackageLevelDetector,
    timeseries: TimeSeriesDetector,
}

/// Streaming state for the combined framework.
#[derive(Debug, Clone)]
pub struct CombinedState {
    ts: TsState,
}

/// A set of independent per-stream lanes plus the scratch buffers that let
/// [`CombinedDetector::classify_batch`] step all of them through the
/// framework together.
///
/// Lanes are added with [`CombinedDetector::add_lane`]; each lane carries
/// one stream's [`CombinedState`]. All per-package scratch (discretized
/// vectors, signature string, one-hot block, LSTM state blocks) is owned
/// here and reused across flushes, so steady-state batched classification
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct CombinedBatch {
    states: Vec<TsState>,
    ts: TsBatchScratch,
    vectors: Vec<DiscreteVector>,
    ids: Vec<Option<usize>>,
    flags: Vec<Option<bool>>,
    package_hits: Vec<bool>,
    ts_decisions: Vec<bool>,
    ranks: Vec<Option<usize>>,
    sig_buf: String,
}

impl CombinedBatch {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.states.len()
    }

    /// Moves lane `lane`'s stream state out, leaving a hollow placeholder
    /// behind. Used by partitioned rounds
    /// ([`crate::streaming::RoundPartition`]): the moved-out state is
    /// stepped inside a partition's own compact batch, then restored with
    /// [`CombinedBatch::restore_lane_state`] before the lane is used again.
    pub(crate) fn take_lane_state(&mut self, lane: usize) -> TsState {
        std::mem::replace(&mut self.states[lane], TsState::hollow())
    }

    /// Restores a lane state moved out by
    /// [`CombinedBatch::take_lane_state`].
    pub(crate) fn restore_lane_state(&mut self, lane: usize, state: TsState) {
        self.states[lane] = state;
    }

    /// Appends a moved-in lane state (building a compact partition batch
    /// whose local lanes `0..n` map onto a subset of another batch's
    /// lanes).
    pub(crate) fn push_lane_state(&mut self, state: TsState) {
        self.states.push(state);
    }

    /// Drains every lane state in lane order (partition teardown: the
    /// states travel back to their home batch).
    pub(crate) fn drain_lane_states(&mut self) -> std::vec::Drain<'_, TsState> {
        self.states.drain(..)
    }
}

impl CombinedDetector {
    /// Assembles the framework from its two trained levels.
    pub fn new(package: PackageLevelDetector, timeseries: TimeSeriesDetector) -> Self {
        CombinedDetector {
            package,
            timeseries,
        }
    }

    /// The package-level detector.
    pub fn package_level(&self) -> &PackageLevelDetector {
        &self.package
    }

    /// The time-series-level detector.
    pub fn time_series_level(&self) -> &TimeSeriesDetector {
        &self.timeseries
    }

    /// Sets the top-`k` parameter of the time-series level.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn set_k(&mut self, k: usize) {
        self.timeseries.set_k(k);
    }

    /// Current `k`.
    pub fn k(&self) -> usize {
        self.timeseries.k()
    }

    /// Total model memory in bytes (Bloom filter + LSTM parameters).
    pub fn memory_bytes(&self) -> usize {
        self.package.memory_bytes() + self.timeseries.memory_bytes()
    }

    /// Begins a streaming classification pass.
    pub fn begin(&self) -> CombinedState {
        CombinedState {
            ts: self.timeseries.begin(),
        }
    }

    /// Classifies one package and feeds it back into the time-series state.
    pub fn classify(&self, state: &mut CombinedState, record: &Record) -> DetectionLevel {
        let vector = self.package.discretizer().discretize(record);
        let sig = icsad_features::signature_of(&vector);
        if self.package.signature_is_anomalous(&sig) {
            // Bloom-level anomaly: skip the time-series check but still
            // feed the package into the LSTM with its anomaly bit set.
            self.timeseries
                .process(&mut state.ts, &vector, None, Some(true));
            return DetectionLevel::PackageLevel;
        }
        let id = self.timeseries.vocabulary().id_of(&sig);
        let anomalous = self.timeseries.process(&mut state.ts, &vector, id, None);
        if anomalous {
            DetectionLevel::TimeSeriesLevel
        } else {
            DetectionLevel::Normal
        }
    }

    /// Begins a batched classification pass with no lanes; add streams with
    /// [`CombinedDetector::add_lane`].
    pub fn begin_batch(&self) -> CombinedBatch {
        CombinedBatch {
            states: Vec::new(),
            ts: self.timeseries.batch_scratch(),
            vectors: Vec::new(),
            ids: Vec::new(),
            flags: Vec::new(),
            package_hits: Vec::new(),
            ts_decisions: Vec::new(),
            ranks: Vec::new(),
            sig_buf: String::new(),
        }
    }

    /// Adds a fresh stream lane to a batch and returns its lane index.
    pub fn add_lane(&self, batch: &mut CombinedBatch) -> usize {
        batch.states.push(self.timeseries.begin());
        batch.states.len() - 1
    }

    /// Resets lane `lane`'s stream state to the exact cold-start state
    /// [`CombinedDetector::add_lane`] installs, so a recycled lane
    /// classifies bit-identically to a freshly added one. Used by the
    /// engine's lane-retirement path when a stream leaves the topology.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn reset_lane(&self, batch: &mut CombinedBatch, lane: usize) {
        batch.states[lane] = self.timeseries.begin();
    }

    /// Batched [`CombinedDetector::classify`]: classifies one package for
    /// each of `lanes.len()` *distinct* stream lanes, in lockstep.
    ///
    /// `records[i]` is the next package of the stream on `batch` lane
    /// `lanes[i]`. The package level (discretization, signature, Bloom
    /// probe) runs per lane with reused scratch; the time-series level then
    /// advances every lane through the LSTM as one matrix–matrix product
    /// ([`TimeSeriesDetector::process_batch`]). Decisions are appended to
    /// `out` in entry order and match a per-record [`CombinedDetector::classify`]
    /// loop on each stream exactly.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != lanes.len()`, a lane index is out of
    /// bounds, or (in debug builds) a lane repeats within the call.
    pub fn classify_batch(
        &self,
        batch: &mut CombinedBatch,
        lanes: &[usize],
        records: &[Record],
        out: &mut Vec<DetectionLevel>,
    ) {
        self.package_stage(batch, lanes, records);

        self.timeseries.process_batch(
            &mut batch.states,
            lanes,
            &batch.vectors,
            &batch.ids,
            &batch.flags,
            &mut batch.ts,
            &mut batch.ts_decisions,
        );

        out.extend(
            batch
                .package_hits
                .iter()
                .zip(batch.ts_decisions.iter())
                .map(|(&package_hit, &ts_hit)| {
                    if package_hit {
                        DetectionLevel::PackageLevel
                    } else if ts_hit {
                        DetectionLevel::TimeSeriesLevel
                    } else {
                        DetectionLevel::Normal
                    }
                }),
        );
    }

    /// Batched [`CombinedDetector::classify_adaptive`]: like
    /// [`CombinedDetector::classify_batch`], but each lane's top-`k`
    /// decision uses that lane's [`DynamicKController`] (`controllers[lane]`,
    /// one per batch lane) instead of the fixed `k`, and every in-bound
    /// rank feeds back into the lane's controller.
    ///
    /// The signature ranks are the ones the batched LSTM step computes
    /// anyway ([`TimeSeriesDetector::process_batch_with_ranks`]), so the
    /// adaptive rule adds no extra model work. The LSTM feedback bit stays
    /// the *fixed*-`k` decision — exactly as in the per-record
    /// [`CombinedDetector::classify_adaptive`] — so decisions and every
    /// lane's state are bit-identical to a per-record adaptive loop on each
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `controllers.len() != batch.lanes()`, plus everything
    /// [`CombinedDetector::classify_batch`] panics on.
    pub fn classify_batch_adaptive(
        &self,
        batch: &mut CombinedBatch,
        lanes: &[usize],
        records: &[Record],
        controllers: &mut [DynamicKController],
        out: &mut Vec<DetectionLevel>,
    ) {
        assert_eq!(
            controllers.len(),
            batch.lanes(),
            "one controller per batch lane"
        );
        self.package_stage(batch, lanes, records);

        batch.ranks.clear();
        self.timeseries.process_batch_with_ranks(
            &mut batch.states,
            lanes,
            &batch.vectors,
            &batch.ids,
            &batch.flags,
            &mut batch.ts,
            &mut batch.ts_decisions,
            &mut batch.ranks,
        );

        for (i, &lane) in lanes.iter().enumerate() {
            if batch.package_hits[i] {
                // Bloom-level anomalies bypass the top-k rule entirely; the
                // controller never sees them (classify_adaptive likewise).
                out.push(DetectionLevel::PackageLevel);
                continue;
            }
            let controller = &mut controllers[lane];
            let rank = batch.ranks[i];
            // Decide with the controller's current k, then feed the rank
            // back — same order as the per-record path.
            let anomalous = match rank {
                Some(rank) => rank > controller.k(),
                None => batch.ids[i].is_none(),
            };
            if let Some(rank) = rank {
                if rank <= controller.max_k() {
                    controller.observe_rank(rank);
                }
            }
            out.push(if anomalous {
                DetectionLevel::TimeSeriesLevel
            } else {
                DetectionLevel::Normal
            });
        }
    }

    /// The package level of one batched flush: discretize, signature,
    /// Bloom probe — filling the batch's per-entry scratch columns.
    fn package_stage(&self, batch: &mut CombinedBatch, lanes: &[usize], records: &[Record]) {
        assert_eq!(records.len(), lanes.len(), "records/lanes mismatch");
        // Quadratic on purpose: the check must not allocate (the engine's
        // zero-allocation ingest test runs with debug assertions on).
        debug_assert!(
            lanes
                .iter()
                .enumerate()
                .all(|(i, lane)| !lanes[..i].contains(lane)),
            "lanes must be distinct within one classify_batch call"
        );
        let disc = self.package.discretizer();
        batch.vectors.clear();
        batch.ids.clear();
        batch.flags.clear();
        batch.package_hits.clear();
        batch.ts_decisions.clear();
        for r in records {
            let vector = disc.discretize(r);
            icsad_features::write_signature(&vector, &mut batch.sig_buf);
            let package_hit = self.package.key_is_anomalous(&batch.sig_buf);
            if package_hit {
                // Bloom-level anomaly: the LSTM still sees the package,
                // with its anomaly bit forced (paper §VI).
                batch.ids.push(None);
                batch.flags.push(Some(true));
            } else {
                batch
                    .ids
                    .push(self.timeseries.vocabulary().id_of_key(&batch.sig_buf));
                batch.flags.push(None);
            }
            batch.package_hits.push(package_hit);
            batch.vectors.push(vector);
        }
    }

    /// Classifies several independent record streams by stepping them in
    /// lockstep batches (streams may have different lengths; shorter ones
    /// simply drop out of later batches). Returns one decision sequence per
    /// stream, identical to running [`CombinedDetector::classify`] over each
    /// stream separately.
    pub fn classify_streams(&self, streams: &[&[Record]]) -> Vec<Vec<DetectionLevel>> {
        let mut batch = self.begin_batch();
        for _ in streams {
            self.add_lane(&mut batch);
        }
        let mut results: Vec<Vec<DetectionLevel>> = streams
            .iter()
            .map(|s| Vec::with_capacity(s.len()))
            .collect();
        let max_len = streams.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut lanes: Vec<usize> = Vec::with_capacity(streams.len());
        let mut records: Vec<Record> = Vec::with_capacity(streams.len());
        let mut decisions: Vec<DetectionLevel> = Vec::with_capacity(streams.len());
        for t in 0..max_len {
            lanes.clear();
            records.clear();
            decisions.clear();
            for (lane, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(t) {
                    lanes.push(lane);
                    records.push(r.clone());
                }
            }
            self.classify_batch(&mut batch, &lanes, &records, &mut decisions);
            for (&lane, &level) in lanes.iter().zip(decisions.iter()) {
                results[lane].push(level);
            }
        }
        results
    }

    /// Classifies one package under a dynamic-`k` controller (the paper's
    /// future-work extension, see [`crate::dynamic_k`]): the controller's
    /// current `k` replaces the fixed top-`k` rule, and the rank of every
    /// *accepted* package feeds back into the controller.
    pub fn classify_adaptive(
        &self,
        state: &mut CombinedState,
        controller: &mut DynamicKController,
        record: &Record,
    ) -> DetectionLevel {
        let vector = self.package.discretizer().discretize(record);
        let sig = icsad_features::signature_of(&vector);
        if self.package.signature_is_anomalous(&sig) {
            self.timeseries
                .process(&mut state.ts, &vector, None, Some(true));
            return DetectionLevel::PackageLevel;
        }
        let id = self.timeseries.vocabulary().id_of(&sig);
        let (_, rank) = self
            .timeseries
            .process_with_rank(&mut state.ts, &vector, id, None);
        // Decide with the controller's k rather than the fixed one.
        let anomalous = match rank {
            Some(rank) => rank > controller.k(),
            None => id.is_none(),
        };
        // Feed the controller every package whose rank is plausibly normal
        // (within the controller's bound) — not just packages accepted at
        // the *current* k, which would self-censor and pin k at its floor.
        if let Some(rank) = rank {
            if rank <= controller.max_k() {
                controller.observe_rank(rank);
            }
        }
        if anomalous {
            DetectionLevel::TimeSeriesLevel
        } else {
            DetectionLevel::Normal
        }
    }

    /// Classifies a stream with dynamic `k` and evaluates against ground
    /// truth.
    pub fn evaluate_adaptive(
        &self,
        controller: &mut DynamicKController,
        records: &[Record],
    ) -> ClassificationReport {
        let mut state = self.begin();
        let mut report = ClassificationReport::default();
        for r in records {
            let level = self.classify_adaptive(&mut state, controller, r);
            report.record(r.label, level.is_anomalous());
        }
        report
    }

    /// Classifies a whole record stream, returning one level per package.
    pub fn classify_stream(&self, records: &[Record]) -> Vec<DetectionLevel> {
        let mut state = self.begin();
        records
            .iter()
            .map(|r| self.classify(&mut state, r))
            .collect()
    }

    /// Classifies a stream and computes the full evaluation report against
    /// ground-truth labels.
    pub fn evaluate(&self, records: &[Record]) -> ClassificationReport {
        let levels = self.classify_stream(records);
        let mut report = ClassificationReport::default();
        for (r, level) in records.iter().zip(levels.iter()) {
            report.record(r.label, level.is_anomalous());
        }
        report
    }

    /// Evaluates only the package level (the framework with the LSTM
    /// disabled) — used by ablations.
    pub fn evaluate_package_level_only(&self, records: &[Record]) -> ClassificationReport {
        let mut report = ClassificationReport::default();
        for r in records {
            report.record(r.label, self.package.is_anomalous(r));
        }
        report
    }

    /// Convenience per-attack summary from an evaluation.
    pub fn per_attack_table(&self, records: &[Record]) -> Vec<(AttackType, Option<f64>)> {
        let report = self.evaluate(records);
        AttackType::ALL
            .iter()
            .map(|&ty| (ty, report.per_attack.ratio(ty)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::{NoiseConfig, TimeSeriesTrainingConfig};
    use icsad_dataset::{DatasetConfig, GasPipelineDataset, Split};
    use icsad_features::{DiscretizationConfig, Discretizer, SignatureVocabulary};

    fn build(total: usize, seed: u64, epochs: usize) -> (CombinedDetector, Split) {
        let data = GasPipelineDataset::generate(&DatasetConfig {
            total_packages: total,
            seed,
            attack_probability: 0.08,
            ..DatasetConfig::default()
        });
        let split = data.split_chronological(0.6, 0.2);
        let disc = Discretizer::fit(
            &DiscretizationConfig::paper_defaults(),
            split.train().records(),
        )
        .unwrap();
        let vocab = SignatureVocabulary::build(&disc, split.train().records());
        let package = PackageLevelDetector::train(&disc, &vocab, 0.001).unwrap();
        let config = TimeSeriesTrainingConfig {
            hidden_dims: vec![24],
            epochs,
            learning_rate: 1e-2,
            noise: Some(NoiseConfig::default()),
            seed,
            ..TimeSeriesTrainingConfig::default()
        };
        let (mut ts, _) = TimeSeriesDetector::train(&disc, &vocab, split.train(), &config).unwrap();
        ts.choose_k(split.validation(), 0.05, 10);
        (CombinedDetector::new(package, ts), split)
    }

    #[test]
    fn stream_classification_has_one_decision_per_package() {
        let (det, split) = build(6_000, 1, 3);
        let levels = det.classify_stream(split.test());
        assert_eq!(levels.len(), split.test().len());
    }

    #[test]
    fn bloom_misses_are_package_level() {
        let (det, split) = build(6_000, 2, 2);
        let levels = det.classify_stream(split.test());
        for (r, level) in split.test().iter().zip(levels.iter()) {
            if det.package_level().is_anomalous(r) {
                assert_eq!(*level, DetectionLevel::PackageLevel);
            } else {
                assert_ne!(*level, DetectionLevel::PackageLevel);
            }
        }
    }

    #[test]
    fn combined_beats_each_level_alone_on_recall() {
        let (det, split) = build(14_000, 3, 8);
        let combined = det.evaluate(split.test());
        let package_only = det.evaluate_package_level_only(split.test());
        // The time-series level can only add detections on top of the
        // Bloom level, so combined recall must dominate.
        assert!(
            combined.recall() >= package_only.recall() - 1e-12,
            "combined recall {} < package-only recall {}",
            combined.recall(),
            package_only.recall()
        );
    }

    #[test]
    fn evaluation_is_plausible() {
        // At this capture size signature coverage is far from converged
        // (see EXPERIMENTS.md for paper-scale numbers); assert the sane
        // lower bounds measured for this configuration.
        let (det, split) = build(14_000, 4, 8);
        let report = det.evaluate(split.test());
        assert!(report.recall() > 0.4, "recall {}", report.recall());
        assert!(
            report.precision() > 0.15,
            "precision {}",
            report.precision()
        );
        assert!(report.accuracy() > 0.5, "accuracy {}", report.accuracy());
        assert!(report.f1_score() > 0.25, "f1 {}", report.f1_score());
    }

    #[test]
    fn larger_k_trades_recall_for_precision() {
        let (mut det, split) = build(10_000, 5, 6);
        det.set_k(1);
        let tight = det.evaluate(split.test());
        det.set_k(10);
        let loose = det.evaluate(split.test());
        // With a larger k fewer packages are flagged: recall can only drop.
        assert!(loose.recall() <= tight.recall() + 1e-12);
        // And false positives can only drop too.
        assert!(loose.confusion.fp <= tight.confusion.fp);
    }

    #[test]
    fn adaptive_classification_produces_sane_reports() {
        use crate::dynamic_k::{DynamicKConfig, DynamicKController};
        let (det, split) = build(10_000, 8, 5);
        let mut controller = DynamicKController::new(det.k(), DynamicKConfig::default());
        let adaptive = det.evaluate_adaptive(&mut controller, split.test());
        let fixed = det.evaluate(split.test());
        assert_eq!(adaptive.confusion.total(), fixed.confusion.total());
        // The controller converged onto some k within bounds and kept a
        // recall in the same regime as the fixed rule.
        assert!((1..=10).contains(&controller.k()));
        assert!(adaptive.recall() > fixed.recall() - 0.25);
        assert!(controller.observations() > 0);
    }

    #[test]
    fn memory_within_paper_scale() {
        let (det, _) = build(6_000, 6, 1);
        // The paper reports 684 KB for the full framework (2×256 LSTM).
        // Our default test model is smaller; just sanity-check the order.
        assert!(det.memory_bytes() < 16 * 1024 * 1024);
        assert!(det.memory_bytes() > 1024);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, split) = build(6_000, 7, 2);
        let (b, _) = build(6_000, 7, 2);
        assert_eq!(
            a.classify_stream(&split.test()[..500]),
            b.classify_stream(&split.test()[..500])
        );
    }

    #[test]
    fn classify_streams_matches_per_record_loops() {
        let (det, split) = build(8_000, 9, 2);
        // Slice the test capture into four unequal "PLC" streams.
        let test = split.test();
        let quarter = test.len() / 4;
        let streams: Vec<&[Record]> = vec![
            &test[..quarter],
            &test[quarter..2 * quarter + 7],
            &test[2 * quarter + 7..3 * quarter],
            &test[3 * quarter..],
        ];

        let batched = det.classify_streams(&streams);
        for (stream, batch_levels) in streams.iter().zip(batched.iter()) {
            let single = det.classify_stream(stream);
            assert_eq!(batch_levels, &single);
        }
    }

    #[test]
    fn classify_batch_interleaves_lanes_correctly() {
        let (det, split) = build(6_000, 10, 1);
        let records = &split.test()[..40];

        // Reference: two independent streams classified one by one.
        let (even, odd): (Vec<_>, Vec<_>) = records
            .iter()
            .cloned()
            .enumerate()
            .partition(|(i, _)| i % 2 == 0);
        let even: Vec<Record> = even.into_iter().map(|(_, r)| r).collect();
        let odd: Vec<Record> = odd.into_iter().map(|(_, r)| r).collect();
        let ref_even = det.classify_stream(&even);
        let ref_odd = det.classify_stream(&odd);

        // Batched: one lane per stream, one package per lane per flush.
        let mut batch = det.begin_batch();
        let lane_even = det.add_lane(&mut batch);
        let lane_odd = det.add_lane(&mut batch);
        let mut out = Vec::new();
        for (e, o) in even.iter().zip(odd.iter()) {
            det.classify_batch(
                &mut batch,
                &[lane_even, lane_odd],
                &[e.clone(), o.clone()],
                &mut out,
            );
        }
        let batched_even: Vec<DetectionLevel> = out.iter().copied().step_by(2).collect();
        let batched_odd: Vec<DetectionLevel> = out.iter().copied().skip(1).step_by(2).collect();
        assert_eq!(batched_even, ref_even);
        assert_eq!(batched_odd, ref_odd);
    }
}
