//! CLI for the workspace invariant linter.
//!
//! ```text
//! icsad-analysis [--root PATH] [--deny] [--list-rules] [--rule NAME]...
//! ```
//!
//! With `--deny` (the CI mode) any violation makes the process exit 1;
//! without it the run is informational and always exits 0. I/O problems
//! exit 2 either way.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: icsad-analysis [--root PATH] [--deny] [--list-rules] [--rule NAME]...\n\
     \n\
     Lints every workspace source file against the project invariants\n\
     documented in ARCHITECTURE.md, section \"Static analysis & verification\".\n\
     \n\
       --root PATH   workspace root to scan (default: current directory)\n\
       --deny        exit 1 if any violation is found (CI mode)\n\
       --rule NAME   run only the named rule (repeatable)\n\
       --list-rules  print the rule catalog and exit\n"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut list_rules = false;
    let mut only_rules: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("error: --root needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny" => deny = true,
            "--list-rules" => list_rules = true,
            "--rule" => match args.next() {
                Some(r) => only_rules.push(r),
                None => {
                    eprintln!("error: --rule needs a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in icsad_analysis::RULES {
            println!("{:32} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    for r in &only_rules {
        if icsad_analysis::rule_help(r).is_none() {
            eprintln!("error: unknown rule `{r}` (see --list-rules)");
            return ExitCode::from(2);
        }
    }

    let report = match icsad_analysis::analyze(&root, &only_rules) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
        if let Some(help) = icsad_analysis::rule_help(d.rule) {
            println!("    help: {help}");
        }
    }
    if report.diagnostics.is_empty() {
        println!(
            "icsad-analysis: {} files scanned, 0 violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "icsad-analysis: {} files scanned, {} violation(s)",
            report.files_scanned,
            report.diagnostics.len()
        );
        println!(
            "note: conventions are documented in ARCHITECTURE.md, \
             section \"Static analysis & verification\""
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
