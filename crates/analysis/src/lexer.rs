//! A token-level Rust lexer.
//!
//! The lint rules in this crate must never fire on the word `unsafe` inside
//! a string literal or a doc comment, must read justification tags out of
//! comments, and must tell the lifetime `'a` apart from the char literal
//! `'a'` — none of which a regex over raw text can do reliably. This lexer
//! produces exactly the token classification the rules need:
//!
//! * **strings** — plain, byte, C and raw strings (`r"…"`, `r#"…"#`, any
//!   hash depth), with escape handling, so their contents are opaque,
//! * **comments** — line and block comments (block comments nest, per the
//!   Rust reference), doc comments included, with their text preserved for
//!   tag search,
//! * **char vs lifetime** — `'a'` lexes as one char literal, `'a` as a
//!   lifetime, including escapes (`'\''`) and labels (`'outer:`),
//! * **identifiers** — keywords are ordinary identifiers here (`unsafe` is
//!   just the ident `unsafe`); raw identifiers (`r#match`) lex as idents,
//! * **numbers** — enough numeric-literal shape (`1.0e-5`, `0xFF`, `1_000`,
//!   suffixes) not to desynchronize, with `0..n` correctly splitting into
//!   number / range / number.
//!
//! It does **not** parse: no precedence, no item structure. The light
//! structure the rules need (attribute spans, `#[cfg(test)]` module
//! extents) is recovered from the token stream in [`crate::source`].

/// What a token is; the lint rules branch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Ordering`, `foo`), including
    /// raw identifiers (`r#match` lexes as the ident `match`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Any string literal: plain, byte, C, or raw (`"…"`, `b"…"`,
    /// `c"…"`, `r#"…"#`). Contents are opaque to every rule.
    Str,
    /// A numeric literal.
    Num,
    /// A `// …` comment (doc comments included), text preserved.
    LineComment,
    /// A `/* … */` comment (nesting handled), text preserved.
    BlockComment,
    /// A single punctuation character (`:`, `#`, `!`, `{`, …).
    Punct,
}

/// One lexed token: classification plus source span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// The token's classification.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based line of the token's last byte (differs from `line` for
    /// multi-line strings and block comments).
    pub end_line: u32,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking the line counter.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// The char starting at the current position (UTF-8 aware).
    fn cur_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Advances past the current char.
    fn bump_char(&mut self) {
        if let Some(c) = self.cur_char() {
            self.bump_n(c.len_utf8());
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes a whole source file. Never fails: unrecognized bytes become
/// single-byte [`TokenKind::Punct`] tokens, and an unterminated string or
/// block comment extends to the end of input (the rules stay sound either
/// way — real workspace sources are valid Rust, which `cargo build`
/// enforces long before this lexer runs).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' => match cur.peek(1) {
                Some(b'/') => {
                    while let Some(c) = cur.peek(0) {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                    TokenKind::LineComment
                }
                Some(b'*') => {
                    cur.bump_n(2);
                    lex_block_comment(&mut cur);
                    TokenKind::BlockComment
                }
                _ => {
                    cur.bump();
                    TokenKind::Punct
                }
            },
            b'"' => {
                cur.bump();
                lex_string_body(&mut cur);
                TokenKind::Str
            }
            b'\'' => lex_quote(&mut cur),
            b'r' | b'b' | b'c' => {
                if let Some(kind) = lex_prefixed(&mut cur) {
                    kind
                } else {
                    lex_ident(&mut cur);
                    TokenKind::Ident
                }
            }
            b'0'..=b'9' => {
                lex_number(&mut cur);
                TokenKind::Num
            }
            _ => {
                let c = cur.cur_char().unwrap_or('\u{FFFD}');
                if is_ident_start(c) {
                    lex_ident(&mut cur);
                    TokenKind::Ident
                } else {
                    cur.bump_char();
                    TokenKind::Punct
                }
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            end_line: cur.line,
        });
    }
    tokens
}

/// A `/* … */` body with arbitrary nesting; the opener is already consumed.
fn lex_block_comment(cur: &mut Cursor) {
    let mut depth = 1usize;
    while let Some(b) = cur.peek(0) {
        if b == b'/' && cur.peek(1) == Some(b'*') {
            depth += 1;
            cur.bump_n(2);
        } else if b == b'*' && cur.peek(1) == Some(b'/') {
            depth -= 1;
            cur.bump_n(2);
            if depth == 0 {
                return;
            }
        } else {
            cur.bump();
        }
    }
}

/// A `"…"` body with escapes; the opening quote is already consumed.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(b) = cur.peek(0) {
        match b {
            b'\\' => cur.bump_n(2.min(cur.bytes.len() - cur.pos)),
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump_char(),
        }
    }
}

/// A `r##"…"##` body; `hashes` opener hashes and the opening quote are
/// already consumed.
fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(b) = cur.peek(0) {
        if b == b'"' {
            let mut matched = 0;
            while matched < hashes && cur.peek(1 + matched) == Some(b'#') {
                matched += 1;
            }
            if matched == hashes {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump_char();
    }
}

/// Everything starting with `'`: a char literal or a lifetime/label.
///
/// Disambiguation mirrors rustc: after the quote, an escape or a
/// non-identifier char always means a char literal; an identifier char
/// means a char literal only if the very next char is the closing quote
/// (`'a'`), otherwise a lifetime (`'a`, `'static`, `'outer:`).
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the opening quote
    match cur.cur_char() {
        Some('\\') => {
            // Escaped char literal: consume the escape, then to the close.
            cur.bump();
            cur.bump_char();
            lex_char_tail(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            let c_len = c.len_utf8();
            if cur.peek(c_len) == Some(b'\'') {
                cur.bump_n(c_len + 1);
                TokenKind::Char
            } else {
                cur.bump_char();
                while let Some(c) = cur.cur_char() {
                    if is_ident_continue(c) {
                        cur.bump_char();
                    } else {
                        break;
                    }
                }
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            cur.bump_char();
            lex_char_tail(cur);
            TokenKind::Char
        }
        None => TokenKind::Punct,
    }
}

/// Consumes up to the closing quote of a char literal (multi-char bodies
/// like `'\u{1F600}'` roll through here).
fn lex_char_tail(cur: &mut Cursor) {
    while let Some(b) = cur.peek(0) {
        match b {
            b'\'' => {
                cur.bump();
                return;
            }
            b'\\' => cur.bump_n(2.min(cur.bytes.len() - cur.pos)),
            b'\n' => return, // unterminated; don't swallow the next line
            _ => cur.bump_char(),
        }
    }
}

/// Handles the `r` / `b` / `c` prefixes: raw strings (`r"…"`, `r#"…"#`),
/// raw identifiers (`r#match`), byte and C strings/chars (`b"…"`, `b'x'`,
/// `br#"…"#`, `c"…"`). Returns `None` if the prefix turns out to start a
/// plain identifier (`radius`, `bar`, `count`).
fn lex_prefixed(cur: &mut Cursor) -> Option<TokenKind> {
    let b0 = cur.peek(0)?;
    // Longest-prefix probe: figure out where a quote/hash would have to be.
    let (skip, raw) = match (b0, cur.peek(1)) {
        (b'r', Some(b'"')) => (1, true),
        (b'r', Some(b'#')) => {
            // Raw string r#"…"# or raw identifier r#match.
            let mut h = 1;
            while cur.peek(1 + h) == Some(b'#') {
                h += 1;
            }
            if cur.peek(1 + h) == Some(b'"') {
                (1, true)
            } else {
                // Raw identifier: consume r# then the ident body.
                cur.bump_n(2);
                lex_ident(cur);
                return Some(TokenKind::Ident);
            }
        }
        (b'b', Some(b'"')) => (1, false),
        (b'b', Some(b'\'')) => {
            cur.bump(); // the b
            return Some(lex_quote(cur)); // always a Char for valid code
        }
        (b'b', Some(b'r')) if matches!(cur.peek(2), Some(b'"') | Some(b'#')) => (2, true),
        (b'c', Some(b'"')) => (1, false),
        _ => return None,
    };
    cur.bump_n(skip);
    if raw {
        let mut hashes = 0;
        while cur.peek(0) == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        if cur.peek(0) == Some(b'"') {
            cur.bump();
            lex_raw_string_body(cur, hashes);
            return Some(TokenKind::Str);
        }
        // `br#foo` is not valid Rust; recover as ident.
        lex_ident(cur);
        return Some(TokenKind::Ident);
    }
    cur.bump(); // the opening quote
    lex_string_body(cur);
    Some(TokenKind::Str)
}

fn lex_ident(cur: &mut Cursor) {
    while let Some(c) = cur.cur_char() {
        if is_ident_continue(c) {
            cur.bump_char();
        } else {
            break;
        }
    }
}

/// A numeric literal: integers, floats with exponents, radix prefixes,
/// `_` separators and type suffixes. `0..n` stops before the range dots.
fn lex_number(cur: &mut Cursor) {
    // Radix prefix?
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O')) {
        cur.bump_n(2);
        while let Some(c) = cur.cur_char() {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.bump_char();
            } else {
                break;
            }
        }
        return;
    }
    let mut seen_exp = false;
    while let Some(c) = cur.cur_char() {
        match c {
            '0'..='9' | '_' => cur.bump_char(),
            '.' => {
                // `1..n` is number, range, number; `1.0` keeps going.
                if matches!(cur.peek(1), Some(b'0'..=b'9')) {
                    cur.bump_char();
                } else {
                    return;
                }
            }
            'e' | 'E' if !seen_exp => {
                match cur.peek(1) {
                    Some(b'0'..=b'9') => cur.bump_n(2),
                    Some(b'+') | Some(b'-') if matches!(cur.peek(2), Some(b'0'..=b'9')) => {
                        cur.bump_n(3)
                    }
                    // `1e` with no digits: a suffix-ish ident tail; absorb.
                    _ => cur.bump_char(),
                }
                seen_exp = true;
            }
            // Type suffixes (u8, f32, usize) and stray alphabetics glue to
            // the literal, which is exactly what rustc does.
            c if c.is_ascii_alphanumeric() => cur.bump_char(),
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn keywords_are_idents_strings_are_opaque() {
        let ks = kinds(r#"let s = "unsafe { Ordering::Relaxed }";"#);
        assert_eq!(ks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(ks[2], (TokenKind::Punct, "=".into()));
        assert_eq!(ks[3].0, TokenKind::Str);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src =
            r####"let a = r"x"; let b = r#"has "quotes" inside"#; let c = r##"deep "# edge"##;"####;
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[1].text(src), r##"r#"has "quotes" inside"#"##);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still outer */ fn f() {}";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::BlockComment);
        assert_eq!(ks[0].1, "/* outer /* inner */ still outer */");
        assert_eq!(ks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let l = 'static; }");
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        let chars: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn byte_and_c_literals() {
        let ks = kinds(r##"let a = b"bytes"; let b = b'x'; let c = c"cstr"; let d = br#"raw"#;"##);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
            3,
            "{ks:?}"
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#match = 1; radius");
        assert_eq!(ks[1], (TokenKind::Ident, "r#match".into()));
        assert_eq!(ks.last().unwrap(), &(TokenKind::Ident, "radius".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let ks = kinds("for i in 0..10 { let f = 1.0e-5; let h = 0xFF_u32; let t = x.0; }");
        assert_eq!(ks[3], (TokenKind::Num, "0".into()));
        assert_eq!(ks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[5], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[6], (TokenKind::Num, "10".into()));
        assert!(ks.contains(&(TokenKind::Num, "1.0e-5".into())));
        assert!(ks.contains(&(TokenKind::Num, "0xFF_u32".into())));
        assert!(ks.contains(&(TokenKind::Num, "0".into())));
    }

    #[test]
    fn line_numbers_across_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"multi\nline\" c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].end_line, 3);
        assert_eq!(toks[2].line, 4); // b
        assert_eq!(toks[3].line, 4); // the string
        assert_eq!(toks[3].end_line, 5);
        assert_eq!(toks[4].line, 5); // c
    }

    #[test]
    fn doc_comments_are_comments() {
        let ks = kinds("/// doc with unsafe inside\n//! inner doc\n/** block doc */ fn f() {}");
        assert_eq!(ks[0].0, TokenKind::LineComment);
        assert_eq!(ks[1].0, TokenKind::LineComment);
        assert_eq!(ks[2].0, TokenKind::BlockComment);
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }
}
