//! The rule catalog.
//!
//! Each rule walks a [`SourceFile`]'s token stream looking for sites that
//! the project's conventions say must carry a justification comment (or
//! must not exist at all outside an allowlisted location) and emits a
//! `file:line` diagnostic for every violation. The conventions themselves
//! are documented in ARCHITECTURE.md, section "Static analysis &
//! verification".

use crate::source::SourceFile;
use crate::TokenKind;
use std::fmt;

/// A single rule violation at a `file:line` site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule that fired (its registry name).
    pub rule: &'static str,
    /// What is wrong at this site.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Static description of a rule, for `--list-rules` and per-diagnostic help.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
    /// One-line remediation hint; every hint points back at the
    /// ARCHITECTURE.md section that defines the convention.
    pub help: &'static str,
}

/// Every rule the linter knows, in the order they run.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unsafe-needs-safety-comment",
        summary: "every `unsafe` keyword must have an attached `// SAFETY:` comment",
        help: "explain why the contract holds in a `// SAFETY:` comment on or directly above \
               the site (ARCHITECTURE.md: Static analysis & verification)",
    },
    RuleInfo {
        name: "arch-confined-to-simd",
        summary: "`core::arch`/`std::arch` may only be referenced inside icsad-simd",
        help: "intrinsics live behind the dispatch layer in crates/simd; call the safe kernel \
               API instead (ARCHITECTURE.md: Static analysis & verification)",
    },
    RuleInfo {
        name: "atomics-need-ordering-comment",
        summary: "every explicit atomic `Ordering::` outside tests needs an `// ORDERING:` \
                  justification",
        help: "state what the ordering synchronizes with (or why Relaxed suffices) in an \
               `// ORDERING:` comment (ARCHITECTURE.md: Static analysis & verification)",
    },
    RuleInfo {
        name: "no-unjustified-panic",
        summary: "`unwrap`/`expect`/`panic!` in non-test library code of \
                  engine/runtime/simd/core needs a `// PANIC:` justification",
        help: "prove the panic is unreachable or intentional in a `// PANIC:` comment, or \
               return an error (ARCHITECTURE.md: Static analysis & verification)",
    },
    RuleInfo {
        name: "forbid-unsafe-where-unused",
        summary: "crates with zero `unsafe` must declare `#![forbid(unsafe_code)]`",
        help: "add `#![forbid(unsafe_code)]` to the crate root so unsafe cannot creep in \
               unreviewed (ARCHITECTURE.md: Static analysis & verification)",
    },
    RuleInfo {
        name: "no-nondeterminism-in-decisions",
        summary: "wall-clock reads and default-hasher HashMaps in decision paths need a \
                  `// NONDET:` justification",
        help: "detection decisions must be replayable; justify with `// NONDET:` why this \
               cannot influence a decision, or use a deterministic structure \
               (ARCHITECTURE.md: Static analysis & verification)",
    },
];

/// Look up a rule's help text by name.
pub fn rule_help(name: &str) -> Option<&'static str> {
    RULES.iter().find(|r| r.name == name).map(|r| r.help)
}

/// Per-file context derived from the path by the runner.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Directory identifying the owning crate (`crates/simd`, or `.` for
    /// the workspace-root package).
    pub crate_dir: String,
    /// True for integration tests, benches, examples, and generators —
    /// paths whose code never runs in the monitor itself.
    pub is_test_path: bool,
}

/// Crates whose library code is on the inline monitoring path: a panic
/// there is an outage, so it must be justified.
const PANIC_SCOPE: &[&str] = &["engine", "runtime", "simd", "core"];

/// Crates whose library code can influence a detection decision: anything
/// nondeterministic there breaks replayability.
const NONDET_SCOPE: &[&str] = &[
    "engine",
    "runtime",
    "core",
    "features",
    "nn",
    "linalg",
    "baselines",
    "bloom",
];

fn in_scope(ctx: &FileCtx, dirs: &[&str]) -> bool {
    dirs.iter()
        .any(|d| ctx.rel.starts_with(&format!("crates/{d}/src/")))
}

/// Runs every per-file rule against one file.
pub fn check_file(file: &SourceFile, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    // Indices of non-comment tokens, so multi-token patterns are immune to
    // interleaved comments.
    let sig: Vec<usize> = (0..file.tokens.len())
        .filter(|&i| {
            !matches!(
                file.tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let text = |s: usize| -> &str {
        sig.get(s)
            .map(|&i| file.tokens[i].text(&file.text))
            .unwrap_or("")
    };
    let kind = |s: usize| sig.get(s).map(|&i| file.tokens[i].kind);
    let line = |s: usize| file.tokens[sig[s]].line;
    let emit = |out: &mut Vec<Diagnostic>, s: usize, rule: &'static str, message: String| {
        out.push(Diagnostic {
            path: ctx.rel.clone(),
            line: line(s),
            rule,
            message,
        });
    };
    // A justification may sit on the flagged token's own statement — on any
    // of its lines, or attached above its first line. The statement start is
    // approximated by walking back to the nearest `;`/`{`/`}` (capped, so a
    // degenerate token run cannot walk arbitrarily far).
    let justified = |s: usize, tag: &str| -> bool {
        let tok_line = line(s);
        let mut k = s;
        let mut hops = 0;
        while k > 0 && hops < 64 {
            let prev = text(k - 1);
            if prev == ";" || prev == "{" || prev == "}" {
                break;
            }
            k -= 1;
            hops += 1;
        }
        let start_line = line(k);
        (start_line..=tok_line).any(|l| file.line_has_tag(l, tag))
            || file.justified(start_line, tag)
    };

    for (s, &i) in sig.iter().enumerate() {
        if kind(s) != Some(TokenKind::Ident) {
            continue;
        }
        let w = text(s);

        // unsafe-needs-safety-comment: applies everywhere, including test
        // code — an unexplained `unsafe` is never acceptable.
        if w == "unsafe" && !justified(s, "SAFETY:") {
            emit(
                out,
                s,
                "unsafe-needs-safety-comment",
                "`unsafe` without an attached `// SAFETY:` comment".to_string(),
            );
        }

        // arch-confined-to-simd: `core::arch` / `std::arch` path anywhere
        // outside crates/simd.
        if (w == "core" || w == "std")
            && text(s + 1) == ":"
            && text(s + 2) == ":"
            && text(s + 3) == "arch"
            && !ctx.rel.starts_with("crates/simd/")
        {
            emit(
                out,
                s,
                "arch-confined-to-simd",
                format!("`{w}::arch` referenced outside icsad-simd"),
            );
        }

        // atomics-need-ordering-comment: `Ordering::Variant` outside tests.
        if w == "Ordering" && text(s + 1) == ":" && text(s + 2) == ":" {
            let variant = text(s + 3);
            if matches!(
                variant,
                "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
            ) && !ctx.is_test_path
                && !file.is_test_code(i)
                && !justified(s, "ORDERING:")
            {
                emit(
                    out,
                    s,
                    "atomics-need-ordering-comment",
                    format!("`Ordering::{variant}` without an `// ORDERING:` justification"),
                );
            }
        }

        if in_scope(ctx, PANIC_SCOPE) && !ctx.is_test_path && !file.is_test_code(i) {
            // no-unjustified-panic: `.unwrap(` / `.expect(` method calls and
            // `panic!` invocations.
            let method = (w == "unwrap" || w == "expect")
                && s > 0
                && text(s - 1) == "."
                && text(s + 1) == "(";
            let macro_call = w == "panic" && text(s + 1) == "!";
            if (method || macro_call) && !justified(s, "PANIC:") {
                let what = if macro_call {
                    "panic!".to_string()
                } else {
                    format!(".{w}()")
                };
                emit(
                    out,
                    s,
                    "no-unjustified-panic",
                    format!("`{what}` in library code without a `// PANIC:` justification"),
                );
            }
        }

        if in_scope(ctx, NONDET_SCOPE) && !ctx.is_test_path && !file.is_test_code(i) {
            // no-nondeterminism-in-decisions: wall-clock reads.
            if (w == "Instant" || w == "SystemTime")
                && text(s + 1) == ":"
                && text(s + 2) == ":"
                && text(s + 3) == "now"
                && !justified(s, "NONDET:")
            {
                emit(
                    out,
                    s,
                    "no-nondeterminism-in-decisions",
                    format!("`{w}::now()` in a decision path without a `// NONDET:` justification"),
                );
            }
            // Default-hasher maps: iteration order is seeded per-process.
            // `use` lines are exempt — the justification belongs at the
            // site that stores or iterates the map.
            if w == "HashMap" && !justified(s, "NONDET:") {
                let first_code_on_line = (0..file.tokens.len())
                    .filter(|&j| {
                        file.tokens[j].line == file.tokens[i].line
                            && !matches!(
                                file.tokens[j].kind,
                                TokenKind::LineComment | TokenKind::BlockComment
                            )
                    })
                    .min();
                let is_use_line =
                    first_code_on_line.is_some_and(|j| file.tokens[j].text(&file.text) == "use");
                if !is_use_line {
                    emit(
                        out,
                        s,
                        "no-nondeterminism-in-decisions",
                        "default-hasher `HashMap` in a decision path without a `// NONDET:` \
                         justification"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// The per-crate rule: a crate whose `src/` contains no `unsafe` at all
/// must pin that property with `#![forbid(unsafe_code)]` in its root file.
///
/// `files` is every discovered file of one crate; returns at most one
/// diagnostic, anchored at the crate root.
pub fn check_forbid_unsafe(crate_dir: &str, files: &[(FileCtx, SourceFile)]) -> Option<Diagnostic> {
    let src_prefix = if crate_dir == "." {
        "src/".to_string()
    } else {
        format!("{crate_dir}/src/")
    };
    let src_files: Vec<&(FileCtx, SourceFile)> = files
        .iter()
        .filter(|(ctx, _)| ctx.rel.starts_with(&src_prefix))
        .collect();
    let has_unsafe = src_files.iter().any(|(_, f)| {
        (0..f.tokens.len())
            .any(|i| f.tokens[i].kind == TokenKind::Ident && f.tok_text(i) == "unsafe")
    });
    if has_unsafe {
        return None;
    }
    // Root file: lib.rs if the crate has one, else main.rs.
    let root = src_files
        .iter()
        .find(|(ctx, _)| ctx.rel == format!("{src_prefix}lib.rs"))
        .or_else(|| {
            src_files
                .iter()
                .find(|(ctx, _)| ctx.rel == format!("{src_prefix}main.rs"))
        })?;
    if root.1.has_forbid_unsafe() {
        return None;
    }
    Some(Diagnostic {
        path: root.0.rel.clone(),
        line: 1,
        rule: "forbid-unsafe-where-unused",
        message: format!(
            "crate `{crate_dir}` uses no unsafe code but does not declare \
             `#![forbid(unsafe_code)]`"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(rel: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(PathBuf::from(rel), src.to_string());
        let ctx = crate::file_ctx(rel);
        let mut out = Vec::new();
        check_file(&file, &ctx, &mut out);
        out
    }

    fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unsafe_without_comment_fires() {
        let d = check("crates/simd/src/x86.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(rules_fired(&d), ["unsafe-needs-safety-comment"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_with_comment_is_clean() {
        let d = check(
            "crates/simd/src/x86.rs",
            "// SAFETY: caller checked the feature\nfn f() { unsafe { g() } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_in_string_or_comment_does_not_fire() {
        let d = check(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n/// Not `unsafe` at all.\nfn f() -> &'static str { \"unsafe { }\" }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn arch_outside_simd_fires() {
        let d = check(
            "crates/engine/src/lib.rs",
            "use core::arch::x86_64::_mm_add_ps;\n",
        );
        assert_eq!(rules_fired(&d), ["arch-confined-to-simd"]);
    }

    #[test]
    fn arch_inside_simd_is_allowed() {
        let d = check(
            "crates/simd/src/x86.rs",
            "// SAFETY: n/a\nuse core::arch::x86_64::_mm_add_ps;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ordering_without_comment_fires_and_test_code_is_exempt() {
        let src = "fn f(a: &AtomicU8) { a.load(Ordering::Acquire); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(a: &super::AtomicU8) { a.load(Ordering::Relaxed); }\n\
                   }\n";
        let d = check("crates/runtime/src/executor.rs", src);
        assert_eq!(rules_fired(&d), ["atomics-need-ordering-comment"]);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn ordering_with_comment_is_clean() {
        let d = check(
            "crates/runtime/src/executor.rs",
            "// ORDERING: pairs with the Release store in notify().\n\
             fn f(a: &AtomicU8) { a.load(Ordering::Acquire); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cmp_ordering_variants_do_not_fire() {
        let d = check(
            "crates/runtime/src/executor.rs",
            "fn f(x: i32) -> Ordering { if x < 0 { Ordering::Less } else { Ordering::Greater } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_in_scope_fires_only_without_panic_comment() {
        let fires = check("crates/engine/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_fired(&fires), ["no-unjustified-panic"]);
        let clean = check(
            "crates/engine/src/lib.rs",
            "// PANIC: x was just inserted above.\nfn f() { x.unwrap(); }\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
        // unwrap_or_default is not unwrap.
        let not_unwrap = check("crates/engine/src/lib.rs", "fn f() { x.unwrap_or(0); }\n");
        assert!(not_unwrap.is_empty(), "{not_unwrap:?}");
        // Out-of-scope crates are not policed.
        let out_of_scope = check("crates/simulator/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert!(out_of_scope.is_empty(), "{out_of_scope:?}");
    }

    #[test]
    fn panic_macro_fires() {
        let d = check(
            "crates/runtime/src/queue.rs",
            "fn f() { panic!(\"boom\"); }\n",
        );
        assert_eq!(rules_fired(&d), ["no-unjustified-panic"]);
    }

    #[test]
    fn instant_now_in_decision_path_fires() {
        let d = check(
            "crates/engine/src/lib.rs",
            "fn f() -> Instant { Instant::now() }\n",
        );
        assert_eq!(rules_fired(&d), ["no-nondeterminism-in-decisions"]);
    }

    #[test]
    fn hashmap_fires_except_on_use_lines_and_with_tag() {
        let fires = check(
            "crates/engine/src/shard.rs",
            "struct S { m: HashMap<u32, usize> }\n",
        );
        assert_eq!(rules_fired(&fires), ["no-nondeterminism-in-decisions"]);
        let use_line = check(
            "crates/engine/src/shard.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(use_line.is_empty(), "{use_line:?}");
        let tagged = check(
            "crates/engine/src/shard.rs",
            "// NONDET: looked up by key only, never iterated.\n\
             struct S { m: HashMap<u32, usize> }\n",
        );
        assert!(tagged.is_empty(), "{tagged:?}");
    }

    #[test]
    fn test_paths_are_exempt_from_scoped_rules() {
        let d = check(
            "crates/engine/tests/decisions.rs",
            "fn f(a: &AtomicU8) { a.load(Ordering::SeqCst); x.unwrap(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn forbid_unsafe_rule() {
        let mk = |rel: &str, src: &str| {
            (
                crate::file_ctx(rel),
                SourceFile::parse(PathBuf::from(rel), src.to_string()),
            )
        };
        // Unsafe-free crate without the attribute: fires at lib.rs:1.
        let files = vec![mk("crates/core/src/lib.rs", "fn f() {}\n")];
        let d = check_forbid_unsafe("crates/core", &files).expect("should fire");
        assert_eq!(d.rule, "forbid-unsafe-where-unused");
        assert_eq!(d.path, "crates/core/src/lib.rs");
        // With the attribute: clean.
        let files = vec![mk(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() {}\n",
        )];
        assert!(check_forbid_unsafe("crates/core", &files).is_none());
        // A crate that genuinely uses unsafe is exempt.
        let files = vec![mk(
            "crates/simd/src/lib.rs",
            "// SAFETY: x\nunsafe fn f() {}\n",
        )];
        assert!(check_forbid_unsafe("crates/simd", &files).is_none());
    }
}
