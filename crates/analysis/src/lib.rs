//! Workspace invariant linter.
//!
//! A dependency-free, token-level static analysis pass over every Rust
//! source file in the workspace. It lexes each file with a real lexer
//! ([`lexer`] — raw strings, nested block comments, lifetime-vs-char
//! disambiguation), recovers light structure ([`source`] — attribute
//! spans, `#[cfg(test)]` extents, justification-comment attachment), and
//! enforces the project conventions as named rules ([`rules`]).
//!
//! The binary (`cargo run -p icsad-analysis -- --deny`) is the CI
//! entry point; [`analyze`] is the library entry point used by the
//! workspace-clean integration test. The crate deliberately has no
//! dependencies — it is a trust root for the rest of the workspace and
//! must not depend on anything it audits.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod source;

pub use lexer::{lex, Token, TokenKind};
pub use rules::{check_file, check_forbid_unsafe, rule_help, Diagnostic, FileCtx, RuleInfo, RULES};
pub use source::SourceFile;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directory names never descended into during discovery. `fixtures`
/// excludes the rule-violation corpora under `crates/*/tests/fixtures/`,
/// which exist precisely to trip the linter.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Recursively finds every `.rs` file under `root`, skipping `SKIP_DIRS`.
/// Returned paths are workspace-relative and sorted, so runs are
/// deterministic regardless of filesystem iteration order.
pub fn discover(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    walk(&path, root, out)?;
                }
            } else if name.ends_with(".rs") {
                // PANIC: `path` was built by joining under `root`, so
                // strip_prefix cannot fail.
                out.push(path.strip_prefix(root).unwrap().to_path_buf());
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Derives the rule context for a workspace-relative path.
pub fn file_ctx(rel: &str) -> FileCtx {
    let rel = rel.replace('\\', "/");
    let crate_dir = match rel.strip_prefix("crates/") {
        Some(rest) => match rest.split('/').next() {
            Some(dir) => format!("crates/{dir}"),
            None => ".".to_string(),
        },
        None => ".".to_string(),
    };
    let tail = rel
        .strip_prefix(&format!("{crate_dir}/"))
        .unwrap_or(rel.as_str());
    let is_test_path = tail.starts_with("tests/")
        || tail.starts_with("benches/")
        || tail.starts_with("examples/")
        || tail.starts_with("src/bin/")
        || tail == "build.rs";
    FileCtx {
        rel,
        crate_dir,
        is_test_path,
    }
}

/// Result of an [`analyze`] run.
pub struct Report {
    /// Violations, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Runs every rule over every workspace source file under `root`.
///
/// `only_rules`, when non-empty, restricts the run to the named rules.
pub fn analyze(root: &Path, only_rules: &[String]) -> std::io::Result<Report> {
    let enabled = |name: &str| only_rules.is_empty() || only_rules.iter().any(|r| r == name);
    let mut by_crate: BTreeMap<String, Vec<(FileCtx, SourceFile)>> = BTreeMap::new();
    let mut files_scanned = 0usize;
    for rel in discover(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().into_owned();
        let ctx = file_ctx(&rel_str);
        let file = SourceFile::parse(rel, text);
        files_scanned += 1;
        by_crate
            .entry(ctx.crate_dir.clone())
            .or_default()
            .push((ctx, file));
    }
    let mut diagnostics = Vec::new();
    for (crate_dir, files) in &by_crate {
        for (ctx, file) in files {
            let mut out = Vec::new();
            rules::check_file(file, ctx, &mut out);
            diagnostics.extend(out.into_iter().filter(|d| enabled(d.rule)));
        }
        if enabled("forbid-unsafe-where-unused") {
            if let Some(d) = rules::check_forbid_unsafe(crate_dir, files) {
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort();
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Lints a single source text as if it sat at `rel` in the workspace —
/// the entry point the fixture tests use.
pub fn check_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    let ctx = file_ctx(rel);
    let file = SourceFile::parse(PathBuf::from(rel), text.to_string());
    let mut out = Vec::new();
    rules::check_file(&file, &ctx, &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_ctx_classification() {
        let c = file_ctx("crates/simd/src/x86.rs");
        assert_eq!(c.crate_dir, "crates/simd");
        assert!(!c.is_test_path);

        let c = file_ctx("crates/engine/tests/decisions.rs");
        assert_eq!(c.crate_dir, "crates/engine");
        assert!(c.is_test_path);

        let c = file_ctx("crates/bench/benches/kernels.rs");
        assert!(c.is_test_path);

        let c = file_ctx("src/lib.rs");
        assert_eq!(c.crate_dir, ".");
        assert!(!c.is_test_path);

        let c = file_ctx("examples/commission.rs");
        assert_eq!(c.crate_dir, ".");
        assert!(c.is_test_path);
    }

    #[test]
    fn rule_registry_is_consistent() {
        // Every rule name referenced by the checkers exists in the registry.
        for name in [
            "unsafe-needs-safety-comment",
            "arch-confined-to-simd",
            "atomics-need-ordering-comment",
            "no-unjustified-panic",
            "forbid-unsafe-where-unused",
            "no-nondeterminism-in-decisions",
        ] {
            assert!(rule_help(name).is_some(), "missing registry entry: {name}");
        }
        assert_eq!(RULES.len(), 6);
    }
}
