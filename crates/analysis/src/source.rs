//! The per-file model the rules run against: the token stream plus the
//! light structure recovered from it — per-line classification (code /
//! attribute / comment), attribute spans, and `#[cfg(test)]` module
//! extents — and the justification-tag search.

use crate::lexer::{lex, Token, TokenKind};
use std::path::PathBuf;

/// Per-line classification, used by the justification walk.
#[derive(Debug, Clone, Default)]
struct LineInfo {
    /// The line carries at least one non-comment, non-attribute token.
    has_code: bool,
    /// Concatenated text of every comment token touching this line.
    comments: String,
}

/// A lexed source file with the derived structure the rules need.
pub struct SourceFile {
    /// Workspace-relative path (as discovered).
    pub path: PathBuf,
    /// The raw text.
    pub text: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// For each token, whether it lies inside a `#[cfg(test)]` module.
    in_test_code: Vec<bool>,
    /// For each token, whether it belongs to an attribute (`#[…]`).
    in_attr: Vec<bool>,
    lines: Vec<LineInfo>,
}

impl SourceFile {
    /// Lexes `text` and derives the line/attribute/test structure.
    pub fn parse(path: PathBuf, text: String) -> SourceFile {
        let tokens = lex(&text);
        let in_attr = attr_spans(&text, &tokens);
        let in_test_code = cfg_test_spans(&text, &tokens, &in_attr);
        let last_line = tokens.last().map(|t| t.end_line).unwrap_or(1);
        let mut lines = vec![LineInfo::default(); last_line as usize + 1];
        for (i, t) in tokens.iter().enumerate() {
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => {
                    for l in t.line..=t.end_line {
                        let li = &mut lines[l as usize];
                        if !li.comments.is_empty() {
                            li.comments.push('\n');
                        }
                        li.comments.push_str(t.text(&text));
                    }
                }
                _ if in_attr[i] => {
                    // Attribute tokens classify a line as neither code nor
                    // comment: the justification walk skips over them.
                }
                _ => {
                    for l in t.line..=t.end_line {
                        lines[l as usize].has_code = true;
                    }
                }
            }
        }
        SourceFile {
            path,
            text,
            tokens,
            in_test_code,
            in_attr,
            lines,
        }
    }

    /// The text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Whether token `i` lies inside a `#[cfg(test)]` module.
    pub fn is_test_code(&self, i: usize) -> bool {
        self.in_test_code[i]
    }

    /// Whether token `i` belongs to an attribute.
    pub fn is_attr(&self, i: usize) -> bool {
        self.in_attr[i]
    }

    /// Whether a justification comment containing `tag` is attached to the
    /// code at `line`.
    ///
    /// A tag attaches if it appears in a comment **on the line itself**
    /// (trailing: `foo(); // TAG: why`) or on a comment/attribute/blank run
    /// of lines **directly above** it — the walk stops at the first line
    /// carrying other code and after `MAX_TAG_DISTANCE` lines, so a tag can
    /// never justify a site it was not written next to.
    pub fn justified(&self, line: u32, tag: &str) -> bool {
        /// How far above its site a justification comment may sit (large
        /// enough for a thorough paragraph, small enough that a stray tag
        /// cannot leak across items).
        const MAX_TAG_DISTANCE: u32 = 25;
        let at = |l: u32| self.lines.get(l as usize);
        if at(line).is_some_and(|li| li.comments.contains(tag)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && line - l <= MAX_TAG_DISTANCE {
            let Some(li) = at(l) else { break };
            if li.comments.contains(tag) {
                return true;
            }
            if li.has_code {
                return false;
            }
            l -= 1;
        }
        false
    }

    /// Whether any comment touching `line` contains `tag` (no walking).
    pub fn line_has_tag(&self, line: u32, tag: &str) -> bool {
        self.lines
            .get(line as usize)
            .is_some_and(|li| li.comments.contains(tag))
    }

    /// Whether the file carries the crate-level attribute
    /// `#![forbid(unsafe_code)]`.
    pub fn has_forbid_unsafe(&self) -> bool {
        let t = |i: usize| -> &str { self.tokens.get(i).map(|t| t.text(&self.text)).unwrap_or("") };
        (0..self.tokens.len()).any(|i| {
            t(i) == "#"
                && t(i + 1) == "!"
                && t(i + 2) == "["
                && t(i + 3) == "forbid"
                && t(i + 4) == "("
                && t(i + 5) == "unsafe_code"
                && t(i + 6) == ")"
                && t(i + 7) == "]"
        })
    }
}

/// Marks every token belonging to an attribute: `#` (optionally `!`) `[` …
/// matching `]`.
fn attr_spans(src: &str, tokens: &[Token]) -> Vec<bool> {
    let is = |i: usize, s: &str| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == s)
    };
    let mut in_attr = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is(i, "#") && (is(i + 1, "[") || (is(i + 1, "!") && is(i + 2, "["))) {
            let open = if is(i + 1, "[") { i + 1 } else { i + 2 };
            let mut depth = 0usize;
            let mut j = open;
            while j < tokens.len() {
                if is(j, "[") {
                    depth += 1;
                } else if is(j, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = j.min(tokens.len() - 1);
            for flag in in_attr.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    in_attr
}

/// Marks every token inside a module annotated `#[cfg(test)]`.
///
/// Recognized shape: the exact attribute `#[cfg(test)]`, followed (through
/// any further attributes and comments) by `mod name {`, whose braces are
/// then matched. `#[cfg(not(test))]` and `#[cfg(any(…, test))]` do *not*
/// match — only unconditional test modules are exempt from the rules.
fn cfg_test_spans(src: &str, tokens: &[Token], in_attr: &[bool]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let is = |i: usize, s: &str| tokens.get(i).is_some_and(|t| t.text(src) == s);
    let mut i = 0;
    while i < tokens.len() {
        // #[cfg(test)]
        if is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]")
        {
            // Skip to the annotated item through comments and more attrs.
            let mut j = i + 7;
            while j < tokens.len()
                && (matches!(
                    tokens[j].kind,
                    TokenKind::LineComment | TokenKind::BlockComment
                ) || in_attr[j])
            {
                j += 1;
            }
            if is(j, "mod") {
                // mod name { … } — match the braces. (`mod tests;` has no
                // body here; its file lives under a path the runner
                // excludes.)
                let mut k = j + 1;
                while k < tokens.len() && !is(k, "{") && !is(k, ";") {
                    k += 1;
                }
                if is(k, "{") {
                    let mut depth = 0usize;
                    let mut end = k;
                    while end < tokens.len() {
                        if is(end, "{") {
                            depth += 1;
                        } else if is(end, "}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    let end = end.min(tokens.len() - 1);
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), src.to_string())
    }

    #[test]
    fn justification_attaches_through_comments_attrs_and_blanks() {
        let f = parse(
            "// SAFETY: reason one\n\
             // continued prose\n\
             #[inline(always)]\n\
             \n\
             fn f() {}\n",
        );
        assert!(f.justified(5, "SAFETY:"));
        assert!(!f.justified(5, "ORDERING:"));
    }

    #[test]
    fn justification_stops_at_code() {
        let f = parse(
            "// SAFETY: for the first one\n\
             call_one();\n\
             call_two();\n",
        );
        assert!(f.justified(2, "SAFETY:"));
        assert!(!f.justified(3, "SAFETY:"));
    }

    #[test]
    fn trailing_comment_on_same_line_counts() {
        let f = parse("do_it(); // ORDERING: counter, read after join\n");
        assert!(f.justified(1, "ORDERING:"));
    }

    #[test]
    fn cfg_test_module_extent() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn inner() { x.unwrap(); }\n\
                   }\n\
                   fn prod2() {}\n";
        let f = parse(src);
        let unwrap_idx = f
            .tokens
            .iter()
            .enumerate()
            .find(|(i, t)| t.kind == TokenKind::Ident && f.tok_text(*i) == "unwrap")
            .map(|(i, _)| i)
            .unwrap();
        assert!(f.is_test_code(unwrap_idx));
        let prod2_idx = f
            .tokens
            .iter()
            .enumerate()
            .find(|(i, _)| f.tok_text(*i) == "prod2")
            .map(|(i, _)| i)
            .unwrap();
        assert!(!f.is_test_code(prod2_idx));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod m { fn f() { x.unwrap(); } }\n";
        let f = parse(src);
        assert!((0..f.tokens.len()).all(|i| !f.is_test_code(i)));
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(parse("#![forbid(unsafe_code)]\nfn f() {}").has_forbid_unsafe());
        assert!(!parse("#![deny(unsafe_code)]\nfn f() {}").has_forbid_unsafe());
        assert!(!parse("fn f() {}").has_forbid_unsafe());
    }

    #[test]
    fn attr_tokens_marked() {
        let f = parse("#[derive(Debug, Clone)]\nstruct S;\n");
        let derive_idx = (0..f.tokens.len())
            .find(|&i| f.tok_text(i) == "derive")
            .unwrap();
        assert!(f.is_attr(derive_idx));
        let struct_idx = (0..f.tokens.len())
            .find(|&i| f.tok_text(i) == "struct")
            .unwrap();
        assert!(!f.is_attr(struct_idx));
    }
}
