//! Negative-test fixture: every construct below must be flagged when this
//! file is checked under the path `crates/engine/src/fixture.rs`. The
//! expected (line, rule) pairs live in `tests/fixtures.rs`; keep them in
//! sync when editing. This directory is excluded from discovery, so the
//! real lint run never sees this file.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn bad_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn bad_arch() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

pub fn bad_ordering(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn bad_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_clock() -> Instant {
    Instant::now()
}

pub fn bad_map() -> HashMap<u32, u32> {
    HashMap::new()
}
