//! Lexer stress fixture: every `unsafe`, `Ordering::`, `unwrap` and
//! `panic!` spelling below lives inside a string, raw string, comment, or
//! doc comment — none of it is code, so the rules must report nothing.
//!
//! Doc text mentioning unsafe { *p } or v.unwrap() stays prose.

/// This doc comment mentions `unsafe { code }` and `Ordering::SeqCst` and
/// even panic!("x") — all prose.
pub fn strings() -> Vec<String> {
    vec![
        "unsafe { *ptr }".to_string(),
        "Ordering::Relaxed".to_string(),
        String::from("v.unwrap()"),
        r"raw \ unsafe backslash".to_string(),
        r#"raw: unsafe { panic!("boom") } "quoted""#.to_string(),
        r##"deeper: br#"unsafe"# inside"##.to_string(),
        "escaped \" then unsafe".to_string(),
    ]
}

/* Block comment with unsafe and panic!().
   /* Nested block comment: Ordering::AcqRel, x.unwrap(). */
   Still the outer comment after the nested one closes. */
pub fn chars_and_lifetimes<'unsafe_looking>(x: &'unsafe_looking str) -> (char, char, &str) {
    // A lifetime `'a` must not start a char literal; `'{'` and `'\''` are
    // chars. The byte string below contains the word unsafe, not code.
    let open = '{';
    let quote = '\'';
    let _bytes: &[u8] = b"unsafe in a byte string";
    (open, quote, x)
}
