//! Positive-test fixture: the same constructs as `violations.rs`, each
//! carrying the justification the rules require — checked under the path
//! `crates/engine/src/fixture.rs`, this file must produce zero diagnostics.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn good_unsafe(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

pub fn good_ordering(c: &AtomicU64) -> u64 {
    // ORDERING: Relaxed — fixture counter, orders nothing.
    c.load(Ordering::Relaxed)
}

pub fn good_unwrap(v: Option<u8>) -> u8 {
    v.unwrap() // PANIC: fixture — caller contract guarantees Some.
}

pub fn good_panic() {
    // PANIC: fixture — unreachable by construction.
    panic!("boom");
}

pub fn good_clock() -> Instant {
    // NONDET: fixture — reporting only, never feeds a decision.
    Instant::now()
}

// NONDET: fixture — lookup-only map in the signature, never iterated.
pub fn good_map() -> HashMap<u32, u32> {
    HashMap::new() // NONDET: fixture — lookup-only.
}

#[cfg(test)]
mod tests {
    // Test code is exempt from the panic/ordering rules entirely.
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn exempt() {
        let c = AtomicU64::new(0);
        assert_eq!(c.load(Ordering::SeqCst), 0);
        Some(1u8).unwrap();
    }
}
