//! Fixture-driven rule tests plus the workspace-clean gate.
//!
//! The `.rs` files under `tests/fixtures/` are *data*, not compiled code —
//! the `fixtures` directory is excluded from discovery, so the negative
//! fixture's deliberate violations never reach the real lint run. Each
//! fixture is checked here through [`icsad_analysis::check_source`] under
//! a synthetic in-scope path.

use icsad_analysis::check_source;

/// Path placing a fixture on the strictest real scope: engine library code
/// is covered by the panic and nondeterminism rules as well as the
/// universal unsafe/arch/atomics rules.
const ENGINE_PATH: &str = "crates/engine/src/fixture.rs";

#[test]
fn negative_fixture_trips_every_rule() {
    let text = include_str!("fixtures/violations.rs");
    let got: Vec<(u32, &str)> = check_source(ENGINE_PATH, text)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect();
    let want = vec![
        (11, "unsafe-needs-safety-comment"),
        (15, "arch-confined-to-simd"),
        (19, "atomics-need-ordering-comment"),
        (23, "no-unjustified-panic"),
        (27, "no-unjustified-panic"),
        (31, "no-nondeterminism-in-decisions"),
        (34, "no-nondeterminism-in-decisions"),
        (35, "no-nondeterminism-in-decisions"),
    ];
    assert_eq!(got, want, "fixture drifted from its expectation table");
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let text = include_str!("fixtures/clean.rs");
    let got = check_source(ENGINE_PATH, text);
    assert!(
        got.is_empty(),
        "justified fixture still flagged: {:#?}",
        got
    );
}

#[test]
fn lexer_fixture_produces_no_diagnostics() {
    let text = include_str!("fixtures/lexer_tricky.rs");
    let got = check_source(ENGINE_PATH, text);
    assert!(
        got.is_empty(),
        "keyword spellings inside strings/comments were flagged: {:#?}",
        got
    );
}

#[test]
fn rules_relax_outside_their_scope() {
    // The panic and nondeterminism rules only apply to crates on the
    // monitoring/decision path; a tool crate may unwrap freely. The
    // unsafe, arch and atomics rules hold everywhere.
    let text = include_str!("fixtures/violations.rs");
    let got: Vec<&str> = check_source("crates/analysis/src/fixture.rs", text)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert_eq!(
        got,
        vec![
            "unsafe-needs-safety-comment",
            "arch-confined-to-simd",
            "atomics-need-ordering-comment",
        ],
    );
}

#[test]
fn test_paths_keep_the_universal_rules() {
    // Integration tests and benches are exempt from panic/ordering/nondet,
    // but not from the unsafe rule.
    let text = include_str!("fixtures/violations.rs");
    let got: Vec<&str> = check_source("crates/engine/tests/fixture.rs", text)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    assert_eq!(
        got,
        vec!["unsafe-needs-safety-comment", "arch-confined-to-simd"],
    );
}

/// The gate the CI job enforces, as a plain test: the workspace itself must
/// lint clean. Running it here means `cargo test` catches a regression even
/// where the dedicated CI job is not wired.
#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = icsad_analysis::analyze(&root, &[]).expect("workspace read");
    assert!(
        report.files_scanned > 100,
        "discovery collapsed: only {} files found",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
