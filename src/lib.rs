//! # icsad — multi-level anomaly detection for industrial control systems
//!
//! Umbrella crate for a full reproduction of *Feng, Li, Chana. "Multi-level
//! Anomaly Detection in Industrial Control Systems via Package Signatures and
//! LSTM networks" (DSN 2017)*.
//!
//! The workspace implements, from scratch:
//!
//! * a gas-pipeline SCADA **simulator** (PID-controlled pressure process,
//!   Modbus master/slave traffic, seven attack types) standing in for the
//!   Morris et al. dataset,
//! * the **package-level** anomaly detector (feature discretization →
//!   signature database → Bloom filter),
//! * the **time-series-level** anomaly detector (stacked LSTM softmax
//!   classifier over package signatures with top-`k` decision rule and
//!   probabilistic-noise training),
//! * the **combined framework** of the paper, and
//! * six baseline detectors (window Bloom filter, Bayesian network, SVDD,
//!   Isolation Forest, GMM, PCA-SVD) used in Tables IV and V.
//!
//! Each subsystem lives in its own crate, re-exported here under a module
//! alias so applications can depend on `icsad` alone.
//!
//! ## Quickstart
//!
//! Generate labelled traffic, train the package-level (Bloom filter)
//! detector and classify the test capture:
//!
//! ```
//! use icsad::prelude::*;
//!
//! let dataset = GasPipelineDataset::generate(&DatasetConfig {
//!     total_packages: 4_000,
//!     seed: 7,
//!     ..DatasetConfig::default()
//! });
//! let split = dataset.split_chronological(0.6, 0.2);
//!
//! let disc = Discretizer::fit(
//!     &DiscretizationConfig::paper_defaults(),
//!     split.train().records(),
//! )?;
//! let vocab = SignatureVocabulary::build(&disc, split.train().records());
//! let detector = PackageLevelDetector::train(&disc, &vocab, 0.001)?;
//!
//! let flagged = split.test().iter().filter(|r| detector.is_anomalous(r)).count();
//! assert!(flagged > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For the full two-level framework (Bloom filter + LSTM) use
//! [`core::experiment::train_framework`]; see the `examples/` directory and
//! EXPERIMENTS.md for paper-scale runs.

#![forbid(unsafe_code)]

pub use icsad_baselines as baselines;
pub use icsad_bloom as bloom;
pub use icsad_core as core;
pub use icsad_dataset as dataset;
pub use icsad_engine as engine;
pub use icsad_features as features;
pub use icsad_linalg as linalg;
pub use icsad_modbus as modbus;
pub use icsad_nn as nn;
pub use icsad_runtime as runtime;
pub use icsad_simd as simd;
pub use icsad_simulator as simulator;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use icsad_baselines::WindowedBackend;
    pub use icsad_bloom::BloomFilter;
    pub use icsad_core::{
        artifact::ArtifactError,
        combined::{CombinedBatch, CombinedDetector, DetectionLevel},
        detector::Detector,
        dynamic_k::{DynamicKConfig, DynamicKController},
        experiment::{train_framework, ExperimentConfig, TrainedFramework},
        metrics::{ClassificationReport, ConfusionCounts, PerAttackRecall},
        package::PackageLevelDetector,
        streaming::{AdaptiveCombined, StreamingDetector, StreamingSession},
        timeseries::{NoiseConfig, TimeSeriesDetector, TimeSeriesTrainingConfig},
    };
    pub use icsad_dataset::{DatasetConfig, Fragments, GasPipelineDataset, Record, Split};
    pub use icsad_engine::{
        Engine, EngineConfig, EngineConfigError, EngineMode, EngineReport, IngestMode, RawFrame,
        ReloadError, RuntimeStats, TestSchedule,
    };
    pub use icsad_features::{DiscretizationConfig, Discretizer, Signature, SignatureVocabulary};
    pub use icsad_simulator::{AttackType, Packet, TrafficConfig, TrafficGenerator};
}
