//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no network access, so the workspace carries the
//! slice of the proptest API its property tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`, [`any`], numeric range
//! strategies, [`collection::vec`], [`bool::ANY`] and a small
//! regex-like string strategy (`.`/`[class]` atoms with `{n}`/`{n,m}`
//! quantifiers).
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test name (fully deterministic), there is no shrinking, and failures
//! surface as ordinary panics showing the failing inputs via the assertion
//! message. Case count defaults to 64 and honours `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: a recipe for generating values.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_numeric_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_numeric_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Strategy for a fixed value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A `&str` pattern is a strategy for `String`s matching a small regex
    /// subset: atoms `.` (printable ASCII) or `[...]` character classes
    /// (literals and `a-z` ranges), each optionally quantified by `{n}` or
    /// `{n,m}`; other characters match themselves.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (atom, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    rng.rng().gen_range(*lo..=*hi)
                };
                for _ in 0..n {
                    out.push(atom.sample(rng));
                }
            }
            out
        }
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    impl Atom {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Any => {
                    // Printable ASCII.
                    char::from(rng.rng().gen_range(0x20u8..0x7f))
                }
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|&(a, b)| (b as u32) - (a as u32) + 1)
                        .sum();
                    let mut pick = rng.rng().gen_range(0..total);
                    for &(a, b) in ranges {
                        let span = (b as u32) - (a as u32) + 1;
                        if pick < span {
                            return char::from_u32(a as u32 + pick).unwrap_or(a);
                        }
                        pick -= span;
                    }
                    ranges[0].0
                }
                Atom::Literal(c) => *c,
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .expect("unterminated character class");
                    let mut ranges = Vec::new();
                    let body = &chars[i + 1..close];
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            ranges.push((body[j], body[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((body[j], body[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .expect("unterminated quantifier");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("quantifier lower bound"),
                        b.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            out.push((atom, lo, hi));
        }
        out
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait backing [`crate::any`].

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.rng().gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen::<bool>()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen::<f32>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen::<f64>()
        }
    }
}

/// Strategy producing any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `proptest::prelude::any`).
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy type for [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: exact, or uniformly drawn from a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element` with a length drawn
    /// from `size` (exact `usize` or `lo..hi`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// Per-test random source, seeded from the test name.
    pub struct TestRng {
        inner: ChaCha12Rng,
    }

    impl TestRng {
        /// Creates the generator for a named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name keeps runs reproducible.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: ChaCha12Rng::seed_from_u64(h),
            }
        }

        /// The underlying RNG.
        pub fn rng(&mut self) -> &mut ChaCha12Rng {
            &mut self.inner
        }
    }

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Per-block configuration (upstream `ProptestConfig`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Runs each property as `test_runner::cases()` deterministic random cases.
/// An optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`
/// overrides the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..(__config.cases as usize) {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::test_runner::cases() {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )+
    };
}

/// Asserts a property-test condition (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts property-test inequality (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_test("string_patterns_match_shape");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = Strategy::generate(&".{0,20}", &mut rng);
            assert!(t.len() <= 20);
        }
    }

    proptest! {
        #[test]
        fn macro_round_trip(v in crate::collection::vec(0u16..500, 1..20), b in crate::bool::ANY) {
            prop_assert!(v.len() < 20 && !v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 500));
            let _ = b;
        }
    }
}
