//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace carries the small slice of the `rand` 0.8 API it actually
//! uses: [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`) and [`seq::SliceRandom::shuffle`].
//!
//! Generators implementing [`RngCore`] (the workspace uses
//! `rand_chacha::ChaCha12Rng`) get the extension methods for free via the
//! blanket impl, exactly like upstream `rand`.
//!
//! **Not stream-compatible with upstream:** `gen_range` samples by modulo
//! reduction and integer `gen` truncates `next_u64`, where upstream uses
//! widening-multiply rejection and width-matched draws. Swapping the real
//! crates back in therefore changes every seeded sequence (datasets,
//! initializations, trained models) even though all code compiles
//! unchanged.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// same convenience entry point as upstream `rand`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next_u64().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used to expand `u64` seeds.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods for random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(5u32..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Lcg(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
