//! Offline subset of `rand_chacha`: a genuine ChaCha12 stream-cipher RNG.
//!
//! The generator implements the ChaCha quarter-round/block construction of
//! Bernstein's ChaCha with 12 rounds, seeded from 32 bytes of key material.
//! Output is *not* guaranteed bit-compatible with the upstream crate (the
//! workspace only relies on determinism for a fixed seed), but the stream
//! quality is the real thing.

#![forbid(unsafe_code)]

pub use rand::{RngCore, SeedableRng};

/// Upstream `rand_chacha` re-exports `rand_core`; mirror the path so
/// `use rand_chacha::rand_core::SeedableRng;` keeps working.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 12;
const WORDS: usize = 16;

/// A ChaCha12-based random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; WORDS],
    /// Next unread word in `block`; `WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0; WORDS],
            index: WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = ChaCha12Rng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "stream should cover the unit interval");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
