//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface the workspace benches use — [`Criterion`],
//! [`Bencher::iter`], [`black_box`], benchmark groups with
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple warmup + median-of-samples measurement loop.
//! Reports mean/median time per iteration and, when a throughput is set,
//! elements per second.
//!
//! Tuning via environment variables: `CRITERION_SAMPLES` (default 11) and
//! `CRITERION_MEASURE_MS` target per-sample time (default 300).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (packages, records, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let samples = env_usize("CRITERION_SAMPLES", 11).max(3);
    let target = Duration::from_millis(env_usize("CRITERION_MEASURE_MS", 300) as u64);

    // Calibration: find an iteration count filling roughly `target`.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target / 10 || iters >= 1 << 40 {
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let need = (target.as_secs_f64() / per_iter.max(1e-12)).ceil() as u64;
            iters = need.clamp(1, 1 << 40);
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let fmt_time = |ns: f64| -> String {
        if ns < 1e3 {
            format!("{ns:.1} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.3} ms", ns / 1e6)
        } else {
            format!("{:.3} s", ns / 1e9)
        }
    };

    print!(
        "{id:<44} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (median / 1e9);
            println!("  [{eps:.0} elem/s]");
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 / (median / 1e9);
            println!("  [{:.1} MiB/s]", bps / (1024.0 * 1024.0));
        }
        None => println!(),
    }
}

/// Benchmark registry/configuration entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_work() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 100);
        assert!(b.elapsed > Duration::ZERO || calls == 100);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_SAMPLES", "3");
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop2", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
