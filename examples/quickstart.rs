//! Quickstart: train the full two-level framework on simulated gas-pipeline
//! traffic and evaluate it on a held-out test capture.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icsad::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture labelled traffic from the simulated SCADA system.
    //    (The paper uses the Morris et al. gas-pipeline capture; this
    //    workspace rebuilds the system that produced it.)
    println!("generating traffic capture...");
    let dataset = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 40_000,
        seed: 42,
        attack_probability: 0.08,
        ..DatasetConfig::default()
    });
    let stats = dataset.stats();
    println!(
        "  {} packages: {} normal, {} attack",
        stats.total(),
        stats.normal,
        stats.attacks()
    );

    // 2. Split 6:2:2 chronologically; train/validation are anomaly-free.
    let split = dataset.split_chronological(0.6, 0.2);
    println!(
        "  train {} / validation {} / test {}",
        split.train().len(),
        split.validation().len(),
        split.test().len()
    );

    // 3. Train both detector levels and choose k on the validation set.
    println!("training framework (Bloom filter + stacked LSTM)...");
    let t0 = std::time::Instant::now();
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![64],
                epochs: 15,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )?;
    println!(
        "  trained in {:?}; |S| = {} signatures, chosen k = {}, model memory = {} KB",
        t0.elapsed(),
        trained.signature_count,
        trained.chosen_k,
        trained.detector.memory_bytes() / 1024
    );

    // 4. Evaluate on the attack-bearing test capture.
    let report = trained.evaluate(split.test());
    println!("\ntest-set performance:");
    println!("  precision {:.3}", report.precision());
    println!("  recall    {:.3}", report.recall());
    println!("  accuracy  {:.3}", report.accuracy());
    println!("  F1-score  {:.3}", report.f1_score());

    println!("\ndetected ratio per attack type:");
    for (attack, detected, total) in report.per_attack.iter() {
        if total > 0 {
            println!(
                "  {:<6} {:>5.2} ({detected}/{total})",
                attack.name(),
                detected as f64 / total as f64
            );
        }
    }
    Ok(())
}
