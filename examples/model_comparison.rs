//! Model comparison: the paper's Table IV scenario on a small scale — the
//! combined framework against the six baseline detectors on the same
//! capture.
//!
//! For the full-size reproduction (with the paper-vs-measured discussion)
//! run the `table4_comparison` binary in `crates/bench` and see
//! EXPERIMENTS.md.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use icsad::prelude::*;
use icsad_baselines::window::{window_label, Windows};
use icsad_baselines::{
    calibrate_fpr, BayesianNetwork, Gmm, IsolationForest, PcaSvd, Svdd, WindowBloomFilter,
    WindowDetector,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 60_000,
        seed: 11,
        attack_probability: 0.08,
        ..DatasetConfig::default()
    });
    let split = dataset.split_chronological(0.6, 0.2);

    // --- The paper's framework (package level + time series level). ---
    println!("training the combined framework...");
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![64],
                epochs: 15,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )?;
    let framework_report = trained.evaluate(split.test());

    // --- Baselines operate on 4-package command-response windows. ---
    println!("training baselines...");
    let disc = Discretizer::fit(
        &DiscretizationConfig::paper_defaults(),
        split.train().records(),
    )?;
    let train_windows = Windows::over(split.train().records(), 4);
    let val_windows = Windows::over(split.validation().records(), 4);
    let test_windows = Windows::over(split.test(), 4);

    let mut detectors: Vec<Box<dyn WindowDetector>> = vec![
        Box::new(WindowBloomFilter::fit_windows(
            disc.clone(),
            &train_windows,
            0.001,
        )?),
        Box::new(BayesianNetwork::fit_windows(disc.clone(), &train_windows)),
        Box::new(Svdd::fit_windows(&train_windows, &Default::default())?),
        Box::new(IsolationForest::fit_windows(&train_windows, 100, 256, 5)?),
        Box::new(Gmm::fit_windows(&train_windows, &Default::default())?),
        Box::new(PcaSvd::fit_windows(&train_windows, 0.95)?),
    ];
    for det in detectors.iter_mut().skip(1) {
        // Score-based models: threshold at 2% validation false positives.
        calibrate_fpr(det.as_mut(), &val_windows, 0.02);
    }

    println!(
        "\n{:<14} {:>10} {:>8} {:>9} {:>9}",
        "model", "precision", "recall", "accuracy", "F1-score"
    );
    let fr = &framework_report;
    println!(
        "{:<14} {:>10.2} {:>8.2} {:>9.2} {:>9.2}",
        "Our framework",
        fr.precision(),
        fr.recall(),
        fr.accuracy(),
        fr.f1_score()
    );
    for det in &detectors {
        let mut report = ClassificationReport::default();
        for w in test_windows.iter() {
            report.record(window_label(w), det.is_anomalous(w));
        }
        println!(
            "{:<14} {:>10.2} {:>8.2} {:>9.2} {:>9.2}",
            det.name(),
            report.precision(),
            report.recall(),
            report.accuracy(),
            report.f1_score()
        );
    }
    println!(
        "\n(the framework is scored per package, baselines per 4-package window,\n matching the paper's §VIII-C protocol)"
    );
    Ok(())
}
