//! Commissioning: train the framework once on clean traffic, save it as a
//! versioned `ICSA` artifact, and prove the artifact cold-starts a detector
//! that makes bit-identical decisions — the train-offline / monitor-online
//! lifecycle the paper's deployment model assumes.
//!
//! Run with (optionally passing the artifact path):
//!
//! ```sh
//! cargo run --release --example commission [detector.icsa]
//! ```

use icsad::prelude::*;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user_path = std::env::args().nth(1).map(std::path::PathBuf::from);
    let keep_artifact = user_path.is_some();
    let path = user_path.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("icsad-commission-{}.icsa", std::process::id()))
    });

    // ── Phase 1: commission. Train on a clean multi-PLC capture. ──────
    let ts_config = TimeSeriesTrainingConfig {
        hidden_dims: vec![32],
        epochs: 4,
        learning_rate: 1e-2,
        ..TimeSeriesTrainingConfig::default()
    };
    let workers = icsad::nn::TrainingConfig {
        num_threads: ts_config.num_threads,
        ..Default::default()
    }
    .resolved_threads();
    println!(
        "commissioning: training on clean traffic from 3 PLCs... (kernels: {}, {} worker{})",
        icsad::simd::current().label(),
        workers,
        if workers == 1 { "" } else { "s" }
    );
    let mut train_records: Vec<Record> = Vec::new();
    for plc in 0..3u8 {
        let mut generator = TrafficGenerator::new(TrafficConfig {
            seed: 11 + u64::from(plc),
            slave_address: plc + 4,
            attack_probability: 0.0,
            ..TrafficConfig::default()
        });
        let packets = generator.generate(4_000);
        train_records.extend(extract_records(&packets, DEFAULT_CRC_WINDOW));
    }
    train_records.sort_by(|a, b| a.time.total_cmp(&b.time));
    let clean = GasPipelineDataset::from_records(train_records);
    let split = clean.split_chronological(0.75, 0.2);
    let t0 = std::time::Instant::now();
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: ts_config,
            ..ExperimentConfig::default()
        },
    )?;
    let train_time = t0.elapsed().as_secs_f64();
    let targets_trained: usize = trained.training_stats.iter().map(|s| s.targets).sum();
    let detector = trained.detector;
    println!(
        "  trained: |S| = {}, k = {}, {} KB resident",
        trained.signature_count,
        trained.chosen_k,
        detector.memory_bytes() / 1024
    );
    println!(
        "  training: {:.2} s wall clock, {} targets over {} epochs — {:.0} targets/s",
        train_time,
        targets_trained,
        trained.training_stats.len(),
        targets_trained as f64 / train_time.max(1e-9)
    );

    // ── Phase 2: save the artifact. ───────────────────────────────────
    let t0 = std::time::Instant::now();
    detector.save(&path)?;
    let artifact_len = std::fs::metadata(&path)?.len();
    println!(
        "\nsaved artifact: {} ({} KB, {:.1} ms)",
        path.display(),
        artifact_len / 1024,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // ── Phase 3: cold-start from the artifact (a fresh process would do
    //    exactly this — no retraining). ──────────────────────────────────
    let t0 = std::time::Instant::now();
    let restored = CombinedDetector::load(&path)?;
    println!(
        "cold start: detector loaded in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // ── Phase 4: verify bit-identical decisions on held-out traffic. ──
    let mut monitor = TrafficGenerator::new(TrafficConfig {
        seed: 71,
        slave_address: 4,
        attack_probability: 0.05,
        ..TrafficConfig::default()
    });
    let live = extract_records(&monitor.generate(2_000), DEFAULT_CRC_WINDOW);
    let original = detector.classify_stream(&live);
    let reloaded = restored.classify_stream(&live);
    assert_eq!(
        original, reloaded,
        "round-tripped detector must make bit-identical decisions"
    );
    let alarms = original.iter().filter(|l| l.is_anomalous()).count();
    println!(
        "verified: {} live packages, {} alarms — decisions bit-identical",
        live.len(),
        alarms
    );

    // ── Phase 5: corrupt artifacts are rejected, not trusted. ─────────
    let mut corrupt = std::fs::read(&path)?;
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    match CombinedDetector::from_bytes(&corrupt) {
        Err(e) => println!("tamper check: corrupted artifact rejected ({e})"),
        Ok(_) => panic!("corrupted artifact must not load"),
    }

    if keep_artifact {
        println!("artifact kept at {}", path.display());
    } else {
        // Only the temp-dir default is scratch; a user-supplied path is
        // the requested deliverable.
        std::fs::remove_file(&path).ok();
    }
    Ok(())
}
