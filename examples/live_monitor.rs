//! Live monitoring: attach a trained detector to a running SCADA system and
//! raise alarms in real time, the deployment scenario the paper's
//! introduction motivates (an anomaly detection system in the control
//! network watching field-device traffic).
//!
//! The example trains on a clean capture, then streams a *new* (attack
//! bearing) capture package by package through the combined detector,
//! printing an alarm line whenever either level fires.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use icsad::prelude::*;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on an anomaly-free commissioning capture ("air-gapped"
    // operation, paper §IV).
    println!("commissioning: training on clean traffic...");
    let clean = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 30_000,
        seed: 1,
        attack_probability: 0.0,
        ..DatasetConfig::default()
    });
    let split = clean.split_chronological(0.75, 0.2);
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![48],
                epochs: 10,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )?;
    let detector = &trained.detector;
    println!(
        "  ready: |S| = {}, k = {}, {} KB resident",
        trained.signature_count,
        trained.chosen_k,
        detector.memory_bytes() / 1024
    );

    // Go live: the same plant, now under attack.
    println!("\ngoing live (attacker active)...\n");
    let mut live = TrafficGenerator::new(TrafficConfig {
        seed: 99,
        attack_probability: 0.03,
        ..TrafficConfig::default()
    });
    let packets = live.generate(4_000);
    let records = extract_records(&packets, DEFAULT_CRC_WINDOW);

    let mut state = detector.begin();
    let mut alarms = 0usize;
    let mut true_alarms = 0usize;
    let mut attacks_seen = 0usize;
    let mut attacks_caught = 0usize;
    let mut latency_ns = 0u128;

    for record in &records {
        let t0 = std::time::Instant::now();
        let level = detector.classify(&mut state, record);
        latency_ns += t0.elapsed().as_nanos();

        if record.is_attack() {
            attacks_seen += 1;
            if level.is_anomalous() {
                attacks_caught += 1;
            }
        }
        if level.is_anomalous() {
            alarms += 1;
            if record.is_attack() {
                true_alarms += 1;
            }
            if alarms <= 12 {
                println!(
                    "  ALARM t={:>9.3}s level={:<11} fn=0x{:02X} truth={}",
                    record.time,
                    match level {
                        icsad_core::combined::DetectionLevel::PackageLevel => "package",
                        icsad_core::combined::DetectionLevel::TimeSeriesLevel => "time-series",
                        _ => "-",
                    },
                    record.function,
                    record
                        .label
                        .map(|a| a.name())
                        .unwrap_or("normal traffic")
                );
            }
        }
    }

    println!("\nshift summary:");
    println!("  {} packages monitored", records.len());
    println!(
        "  {} alarms raised ({} true, {} false)",
        alarms,
        true_alarms,
        alarms - true_alarms
    );
    println!(
        "  {}/{} attack packages caught ({:.1}%)",
        attacks_caught,
        attacks_seen,
        100.0 * attacks_caught as f64 / attacks_seen.max(1) as f64
    );
    println!(
        "  mean classification latency: {:.4} ms",
        latency_ns as f64 / records.len() as f64 / 1e6
    );
    Ok(())
}
