//! Live monitoring: attach a trained detector to a running SCADA plant and
//! raise alarms in real time — through the full operational lifecycle:
//!
//! 1. **Commission**: train on clean traffic, save the detector as a
//!    versioned `ICSA` artifact (twice — the second artifact models a
//!    re-commissioning with a retuned top-`k`).
//! 2. **Cold-start**: spawn the sharded streaming engine from the first
//!    artifact ([`icsad::engine::Engine::start_from_artifact`]) in
//!    **adaptive-`k` mode** ([`icsad::engine::EngineMode::AdaptiveK`]):
//!    every PLC stream carries its own dynamic-`k` controller.
//! 3. **Monitor**: replay an attack-bearing multi-PLC capture as raw
//!    Modbus frames; the engine demultiplexes streams by unit id and
//!    batches in-flight streams through the LSTM together. Garbage frames
//!    (fragments, broken clocks) are quarantined at ingest.
//! 4. **Hot-reload**: swap the re-commissioned artifact into the running
//!    engine mid-shift ([`icsad::engine::Engine::swap_artifact`]) without
//!    dropping a single in-flight stream.
//!
//! In a real deployment the phases run in different processes — often on
//! different machines: commissioning happens where training horsepower
//! lives, and every monitor restart afterwards loads an artifact in
//! milliseconds instead of retraining for minutes.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```
//!
//! Pass `--async` to drive the shards on the cooperative work-stealing
//! ingest runtime ([`icsad::engine::IngestMode::Async`]) instead of one
//! thread per shard — same decisions, fixed thread footprint; the shift
//! summary then includes the scheduler's poll/steal/backpressure counters.

use icsad::prelude::*;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ingest = if std::env::args().any(|a| a == "--async") {
        // A fixed pool sized to the host; shards become cooperative tasks.
        IngestMode::Async { workers: 0 }
    } else {
        IngestMode::Threads
    };
    // Train on an anomaly-free commissioning capture covering every PLC
    // the engine will watch ("air-gapped" operation, paper §IV): records
    // are extracted per stream (correct per-stream intervals), then merged
    // chronologically so the split sees all units.
    println!("commissioning: training on clean traffic from 4 PLCs...");
    let mut train_records: Vec<Record> = Vec::new();
    for plc in 0..4u8 {
        let mut generator = TrafficGenerator::new(TrafficConfig {
            seed: 1 + u64::from(plc),
            slave_address: plc + 4,
            attack_probability: 0.0,
            ..TrafficConfig::default()
        });
        let packets = generator.generate(7_500);
        train_records.extend(extract_records(&packets, DEFAULT_CRC_WINDOW));
    }
    train_records.sort_by(|a, b| a.time.total_cmp(&b.time));
    let clean = GasPipelineDataset::from_records(train_records);
    let split = clean.split_chronological(0.75, 0.2);
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![48],
                epochs: 10,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )?;
    let mut detector = trained.detector;
    println!(
        "  ready: |S| = {}, k = {}, {} KB resident",
        trained.signature_count,
        trained.chosen_k,
        detector.memory_bytes() / 1024
    );

    // Persist the commissioning artifact — the hand-off point between the
    // (offline) training phase and the (online) monitor. A second artifact
    // with a retuned k stands in for a later re-commissioning: the hot
    // patch an operator rolls out after reviewing the validation curve.
    let dir = std::env::temp_dir();
    let artifact_v1 = dir.join(format!("icsad-live-monitor-v1-{}.icsa", std::process::id()));
    let artifact_v2 = dir.join(format!("icsad-live-monitor-v2-{}.icsa", std::process::id()));
    detector.save(&artifact_v1)?;
    detector.set_k(trained.chosen_k + 1);
    detector.save(&artifact_v2)?;
    println!(
        "  artifacts saved: {} ({} KB, k={}) and re-commissioned k={}",
        artifact_v1.display(),
        std::fs::metadata(&artifact_v1)?.len() / 1024,
        trained.chosen_k,
        trained.chosen_k + 1,
    );
    drop(detector); // the monitor below only knows the artifact files

    // Go live: four PLCs on the same control network, attacker active.
    println!("\ngoing live (4 PLCs, attacker active, dynamic-k mode)...\n");
    let mut packets: Vec<Packet> = Vec::new();
    for plc in 0..4u8 {
        let mut live = TrafficGenerator::new(TrafficConfig {
            seed: 99 + u64::from(plc),
            slave_address: plc + 4,
            attack_probability: 0.03,
            ..TrafficConfig::default()
        });
        packets.extend(live.generate(2_000));
    }
    packets.sort_by(|a, b| a.time.total_cmp(&b.time));

    // Cold-start the engine straight from the artifact, as a monitor
    // process restarting in the field would — in adaptive-k mode, so each
    // stream's k follows its own recent prediction ranks (paper §VIII-D).
    let t_cold = std::time::Instant::now();
    let mut engine = Engine::start_from_artifact(
        &artifact_v1,
        EngineConfig {
            num_shards: 2,
            batch_size: 32,
            mode: EngineMode::AdaptiveK(DynamicKConfig::default()),
            ingest,
            ..EngineConfig::default()
        },
    )?;
    println!(
        "engine cold-started from artifact in {:.1} ms (backend: {}, kernels: {}, ingest: {} on {} thread(s))\n",
        t_cold.elapsed().as_secs_f64() * 1e3,
        engine.backend_name(),
        engine.kernel_backend(),
        engine.ingest_mode(),
        engine.ingest_threads(),
    );

    let t0 = std::time::Instant::now();
    let half = packets.len() / 2;
    engine.ingest_packets(&packets[..half]);

    // A corrupted tap: one truncated fragment and one frame with a broken
    // clock. Both are quarantined at ingest, not merged into a stream —
    // delivered in one batched call, as a burst from a real tap would be.
    engine.ingest_batch([
        RawFrame {
            time: packets[half].time,
            wire: vec![0x04].into(),
            is_command: true,
            label: None,
            link: 0,
        },
        RawFrame {
            time: f64::NAN,
            wire: packets[half].wire.clone().into(),
            is_command: packets[half].is_command,
            label: None,
            link: 0,
        },
    ]);

    // Mid-shift hot-reload: the re-commissioned artifact replaces the
    // running detector at each shard's next round boundary. In-flight
    // streams are kept; their state restarts as a cold engine on the new
    // artifact would.
    let t_swap = std::time::Instant::now();
    engine.swap_artifact(&artifact_v2)?;
    println!(
        "hot-reloaded re-commissioned artifact in {:.1} ms (no streams dropped)\n",
        t_swap.elapsed().as_secs_f64() * 1e3
    );

    engine.ingest_packets(&packets[half..]);
    let report = engine.finish();
    let elapsed = t0.elapsed();

    println!("shift summary:");
    println!(
        "  {} packages monitored across {} streams on {} shards",
        report.frames(),
        report.shards.iter().map(|s| s.streams).sum::<usize>(),
        report.shards.len()
    );
    for shard in &report.shards {
        println!(
            "    shard {}: {} frames, {} streams, {} flushes, {} alarms, swapped after round {:?}",
            shard.shard,
            shard.frames,
            shard.streams,
            shard.flushes,
            shard.alarms,
            shard.swap_rounds
        );
    }
    let confusion = &report.total.confusion;
    println!(
        "  {} alarms raised ({} true, {} false)",
        report.alarms(),
        confusion.tp,
        confusion.fp
    );
    println!(
        "  attack recall {:.1}%, precision {:.1}%",
        100.0 * report.total.recall(),
        100.0 * report.total.precision()
    );
    println!(
        "  throughput: {:.0} packages/sec ({:.4} ms mean latency) on {} kernels",
        report.frames() as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3 / report.frames() as f64,
        report.kernel_backend
    );
    println!(
        "  {} hot-reloads applied, {} malformed frames quarantined",
        report.reloads, report.quarantined
    );
    println!(
        "  ingest runtime: {} on {} thread(s), {} polls, {} steals, {} blocked pushes",
        report.runtime.mode,
        report.runtime.ingest_threads,
        report.runtime.polls,
        report.runtime.steals,
        report.runtime.blocked_pushes
    );
    std::fs::remove_file(&artifact_v1).ok();
    std::fs::remove_file(&artifact_v2).ok();
    Ok(())
}
