//! Live monitoring: attach a trained detector to a running SCADA plant and
//! raise alarms in real time — now through the full commissioning
//! lifecycle: train on clean traffic, **save** the detector as a versioned
//! `ICSA` artifact, then **cold-start** the sharded streaming engine from
//! that artifact ([`icsad::engine::Engine::start_from_artifact`]) and
//! replay a *new* (attack-bearing) multi-PLC capture as raw Modbus frames.
//! The engine demultiplexes streams by unit id, batches in-flight streams
//! through the LSTM together and aggregates per-shard reports.
//!
//! In a real deployment the two phases run in different processes — often
//! on different machines: commissioning happens once where training
//! horsepower lives, and every monitor restart afterwards loads the
//! artifact in milliseconds instead of retraining for minutes.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use icsad::prelude::*;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on an anomaly-free commissioning capture covering every PLC
    // the engine will watch ("air-gapped" operation, paper §IV): records
    // are extracted per stream (correct per-stream intervals), then merged
    // chronologically so the split sees all units.
    println!("commissioning: training on clean traffic from 4 PLCs...");
    let mut train_records: Vec<Record> = Vec::new();
    for plc in 0..4u8 {
        let mut generator = TrafficGenerator::new(TrafficConfig {
            seed: 1 + u64::from(plc),
            slave_address: plc + 4,
            attack_probability: 0.0,
            ..TrafficConfig::default()
        });
        let packets = generator.generate(7_500);
        train_records.extend(extract_records(&packets, DEFAULT_CRC_WINDOW));
    }
    train_records.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
    let clean = GasPipelineDataset::from_records(train_records);
    let split = clean.split_chronological(0.75, 0.2);
    let trained = train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![48],
                epochs: 10,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )?;
    let detector = trained.detector;
    println!(
        "  ready: |S| = {}, k = {}, {} KB resident",
        trained.signature_count,
        trained.chosen_k,
        detector.memory_bytes() / 1024
    );

    // Persist the commissioning artifact — the hand-off point between the
    // (offline) training phase and the (online) monitor.
    let artifact_path =
        std::env::temp_dir().join(format!("icsad-live-monitor-{}.icsa", std::process::id()));
    detector.save(&artifact_path)?;
    println!(
        "  artifact saved: {} ({} KB)",
        artifact_path.display(),
        std::fs::metadata(&artifact_path)?.len() / 1024
    );
    drop(detector); // the monitor below only knows the artifact file

    // Go live: four PLCs on the same control network, attacker active.
    println!("\ngoing live (4 PLCs, attacker active)...\n");
    let mut packets: Vec<Packet> = Vec::new();
    for plc in 0..4u8 {
        let mut live = TrafficGenerator::new(TrafficConfig {
            seed: 99 + u64::from(plc),
            slave_address: plc + 4,
            attack_probability: 0.03,
            ..TrafficConfig::default()
        });
        packets.extend(live.generate(2_000));
    }
    packets.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));

    // Cold-start the engine straight from the artifact, as a monitor
    // process restarting in the field would.
    let t_cold = std::time::Instant::now();
    let mut engine = Engine::start_from_artifact(
        &artifact_path,
        EngineConfig {
            num_shards: 2,
            batch_size: 32,
            ..EngineConfig::default()
        },
    )?;
    println!(
        "engine cold-started from artifact in {:.1} ms\n",
        t_cold.elapsed().as_secs_f64() * 1e3
    );

    let t0 = std::time::Instant::now();
    engine.ingest_packets(&packets);
    let report = engine.finish();
    let elapsed = t0.elapsed();

    println!("shift summary:");
    println!(
        "  {} packages monitored across {} streams on {} shards",
        report.frames(),
        report.shards.iter().map(|s| s.streams).sum::<usize>(),
        report.shards.len()
    );
    for shard in &report.shards {
        println!(
            "    shard {}: {} frames, {} streams, {} flushes, {} alarms",
            shard.shard, shard.frames, shard.streams, shard.flushes, shard.alarms
        );
    }
    let confusion = &report.total.confusion;
    println!(
        "  {} alarms raised ({} true, {} false)",
        report.alarms(),
        confusion.tp,
        confusion.fp
    );
    println!(
        "  attack recall {:.1}%, precision {:.1}%",
        100.0 * report.total.recall(),
        100.0 * report.total.precision()
    );
    println!(
        "  throughput: {:.0} packages/sec ({:.4} ms mean latency)",
        report.frames() as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3 / report.frames() as f64
    );
    if report.quarantined > 0 {
        println!("  {} malformed frames quarantined", report.quarantined);
    }
    std::fs::remove_file(&artifact_path).ok();
    Ok(())
}
