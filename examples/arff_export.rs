//! Dataset tooling: generate a labelled capture, export it to ARFF (the
//! format the original Morris et al. dataset ships in), parse it back, and
//! verify the round trip.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example arff_export -- /tmp/gas_pipeline.arff
//! ```

use icsad::prelude::*;
use icsad_dataset::arff;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/gas_pipeline.arff".to_string());

    let dataset = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 10_000,
        seed: 2024,
        attack_probability: 0.1,
        ..DatasetConfig::default()
    });
    let stats = dataset.stats();
    println!("generated {} packages", stats.total());
    println!("  normal: {}", stats.normal);
    for (ty, count) in AttackType::ALL.iter().zip(stats.per_attack.iter()) {
        println!("  {:<6}: {}", ty.name(), count);
    }

    let text = arff::to_arff_string(dataset.records());
    std::fs::write(&path, &text)?;
    println!(
        "\nwrote {} ({} bytes, {} data rows)",
        path,
        text.len(),
        dataset.records().len()
    );

    // Round trip.
    let parsed = arff::parse_arff(&std::fs::read_to_string(&path)?)?;
    assert_eq!(parsed.len(), dataset.records().len());
    assert_eq!(parsed, dataset.records());
    println!("round trip verified: parsed records match the originals");

    // A taste of the file.
    println!("\nfirst rows:");
    for line in text
        .lines()
        .skip_while(|l| !l.starts_with("@data"))
        .skip(1)
        .take(4)
    {
        println!("  {line}");
    }
    Ok(())
}
