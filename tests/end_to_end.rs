//! End-to-end integration tests spanning the whole stack:
//! simulator → Modbus wire format → dataset records → discretization →
//! both detector levels → combined framework → metrics.

use icsad::prelude::*;
use icsad_core::combined::DetectionLevel;
use icsad_dataset::extract::{extract_records, DEFAULT_CRC_WINDOW};
use icsad_modbus::Frame;

fn small_split(seed: u64) -> Split {
    GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 12_000,
        seed,
        attack_probability: 0.08,
        ..DatasetConfig::default()
    })
    .split_chronological(0.6, 0.2)
}

fn fast_experiment() -> ExperimentConfig {
    ExperimentConfig {
        timeseries: TimeSeriesTrainingConfig {
            hidden_dims: vec![24],
            epochs: 4,
            learning_rate: 1e-2,
            ..TimeSeriesTrainingConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

#[test]
fn wire_bytes_survive_the_full_pipeline() {
    // Every simulated packet must decode leniently as a Modbus frame, and
    // the extracted records must agree with the wire contents.
    let mut gen = TrafficGenerator::new(TrafficConfig {
        seed: 5,
        attack_probability: 0.1,
        ..TrafficConfig::default()
    });
    let packets = gen.generate(3_000);
    let records = extract_records(&packets, DEFAULT_CRC_WINDOW);
    assert_eq!(records.len(), packets.len());
    for (p, r) in packets.iter().zip(records.iter()) {
        let (frame, crc_ok) = Frame::decode_lenient(&p.wire).expect("lenient decode");
        assert_eq!(r.address, frame.address());
        assert_eq!(r.function, frame.function().code());
        assert_eq!(r.length as usize, p.wire.len());
        assert_eq!(r.crc_ok, crc_ok);
        assert_eq!(r.label, p.label);
    }
}

#[test]
fn full_framework_end_to_end() {
    let split = small_split(1);
    let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();

    // Streaming and batch classification agree.
    let levels = trained.detector.classify_stream(split.test());
    let report = trained.detector.evaluate(split.test());
    let flagged = levels.iter().filter(|l| l.is_anomalous()).count() as u64;
    assert_eq!(flagged, report.confusion.tp + report.confusion.fp);

    // The framework catches a sensible share of the attacks even at this
    // tiny training budget.
    assert!(report.recall() > 0.3, "recall {}", report.recall());
}

#[test]
fn package_level_and_combined_are_consistent() {
    let split = small_split(2);
    let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();
    let levels = trained.detector.classify_stream(split.test());
    for (r, level) in split.test().iter().zip(levels.iter()) {
        let bloom_says = trained.detector.package_level().is_anomalous(r);
        assert_eq!(
            bloom_says,
            *level == DetectionLevel::PackageLevel,
            "bloom/combined disagreement"
        );
    }
}

#[test]
fn determinism_across_the_whole_stack() {
    let a = {
        let split = small_split(3);
        let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();
        let report = trained.evaluate(split.test());
        (
            trained.chosen_k,
            trained.signature_count,
            report.confusion.tp,
            report.confusion.fp,
        )
    };
    let b = {
        let split = small_split(3);
        let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();
        let report = trained.evaluate(split.test());
        (
            trained.chosen_k,
            trained.signature_count,
            report.confusion.tp,
            report.confusion.fp,
        )
    };
    assert_eq!(a, b, "the whole pipeline must be seed-deterministic");
}

#[test]
fn signature_based_attacks_are_caught_end_to_end() {
    // MFCI (illegal function codes) and Recon (foreign addresses / slave-id
    // reads) produce signatures that cannot be in the database: Table V
    // reports a 1.0 detected ratio and so should we, at any scale.
    let split = small_split(4);
    let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();
    let report = trained.evaluate(split.test());
    for ty in [AttackType::Mfci, AttackType::Recon] {
        if report.per_attack.count(ty) > 0 {
            let ratio = report.per_attack.ratio(ty).unwrap();
            assert!(
                ratio > 0.95,
                "{} detected ratio {ratio} should be ~1.0",
                ty.name()
            );
        }
    }
}

#[test]
fn lstm_serialization_survives_detection() {
    // The trained LSTM can be serialized, restored, and produce identical
    // streaming predictions inside a fresh detector.
    let split = small_split(5);
    let trained = icsad_core::experiment::train_framework(&split, &fast_experiment()).unwrap();
    let model = trained.detector.time_series_level().model();
    let bytes = model.to_bytes();
    let restored = icsad_nn::LstmClassifier::from_bytes(&bytes).unwrap();
    assert_eq!(&restored, model);
}

#[test]
fn arff_round_trip_preserves_detection_results() {
    // Exporting the capture to ARFF and re-importing must not change what
    // the detector sees.
    let data = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: 6_000,
        seed: 6,
        attack_probability: 0.1,
        ..DatasetConfig::default()
    });
    let text = icsad_dataset::arff::to_arff_string(data.records());
    let parsed = icsad_dataset::arff::parse_arff(&text).unwrap();
    let reimported = GasPipelineDataset::from_records(parsed);
    assert_eq!(reimported.records(), data.records());

    let split = data.split_chronological(0.6, 0.2);
    let split2 = reimported.split_chronological(0.6, 0.2);
    assert_eq!(split.test(), split2.test());
}
