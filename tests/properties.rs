//! Cross-crate property-based tests.

use icsad::prelude::*;
use icsad_core::metrics::ConfusionCounts;
use icsad_dataset::arff;
use proptest::prelude::*;

/// A cached capture so each proptest case doesn't regenerate traffic.
fn capture() -> &'static [Record] {
    use std::sync::OnceLock;
    static CAPTURE: OnceLock<Vec<Record>> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        GasPipelineDataset::generate(&DatasetConfig {
            total_packages: 4_000,
            seed: 123,
            attack_probability: 0.15,
            ..DatasetConfig::default()
        })
        .records()
        .to_vec()
    })
}

fn discretizer() -> &'static Discretizer {
    use std::sync::OnceLock;
    static DISC: OnceLock<Discretizer> = OnceLock::new();
    DISC.get_or_init(|| {
        let normal: Vec<Record> = capture()
            .iter()
            .filter(|r| !r.is_attack())
            .cloned()
            .collect();
        Discretizer::fit(&DiscretizationConfig::paper_defaults(), &normal).unwrap()
    })
}

proptest! {
    /// ARFF round-trips any contiguous sub-capture exactly.
    #[test]
    fn arff_round_trip_any_slice(start in 0usize..3_000, len in 0usize..900) {
        let records = capture();
        let end = (start + len).min(records.len());
        let slice = &records[start..end];
        let parsed = arff::parse_arff(&arff::to_arff_string(slice)).unwrap();
        prop_assert_eq!(parsed.as_slice(), slice);
    }

    /// The signature function is deterministic and its uniqueness matches
    /// discretized-vector equality (the paper's requirement on `g`).
    #[test]
    fn signature_uniqueness(i in 0usize..4_000, j in 0usize..4_000) {
        let records = capture();
        let disc = discretizer();
        let (a, b) = (&records[i], &records[j]);
        let sig_eq = disc.signature(a) == disc.signature(b);
        let vec_eq = disc.discretize(a) == disc.discretize(b);
        prop_assert_eq!(sig_eq, vec_eq);
    }

    /// Every signature inserted into the package-level detector's Bloom
    /// filter is found again: the detector never flags training packages.
    #[test]
    fn package_detector_no_false_negatives_on_training(fpr in 0.0005f64..0.05) {
        let records = capture();
        let disc = discretizer();
        let normal: Vec<Record> = records.iter().filter(|r| !r.is_attack()).cloned().collect();
        let vocab = SignatureVocabulary::build(disc, &normal);
        let det = PackageLevelDetector::train(disc, &vocab, fpr).unwrap();
        for r in normal.iter().step_by(7) {
            prop_assert!(!det.is_anomalous(r));
        }
    }

    /// Metric identities hold for arbitrary confusion counts.
    #[test]
    fn metric_identities(tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000) {
        let c = ConfusionCounts { tp, fp, tn, fn_ };
        let (p, r, a, f1) = (c.precision(), c.recall(), c.accuracy(), c.f1_score());
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&f1));
        // F1 is the harmonic mean: between min and max of (p, r).
        if p > 0.0 && r > 0.0 {
            prop_assert!(f1 <= p.max(r) + 1e-12);
            prop_assert!(f1 >= p.min(r) - 1e-12);
        }
        // Accuracy identity.
        if c.total() > 0 {
            let expected = (tp + tn) as f64 / c.total() as f64;
            prop_assert!((a - expected).abs() < 1e-12);
        }
    }

    /// Dataset splits partition the capture chronologically for any valid
    /// fractions.
    #[test]
    fn split_partitions_chronologically(train_pct in 1u32..80, val_pct in 0u32..19) {
        let records = capture();
        let dataset = GasPipelineDataset::from_records(records.to_vec());
        let train_frac = f64::from(train_pct) / 100.0;
        let val_frac = f64::from(val_pct) / 100.0;
        let split = dataset.split_chronological(train_frac, val_frac);
        // Train and validation contain no attacks.
        prop_assert!(split.train().records().iter().all(|r| !r.is_attack()));
        prop_assert!(split.validation().records().iter().all(|r| !r.is_attack()));
        // The test partition is a suffix of the capture.
        let n = records.len();
        let test_len = split.test().len();
        prop_assert_eq!(split.test(), &records[n - test_len..]);
        // Fragments respect the minimum length.
        for frag in split.train().iter() {
            prop_assert!(frag.len() >= Split::MIN_FRAGMENT_LEN);
        }
    }

    /// The Modbus codec round-trips arbitrary pipeline states (quantized to
    /// the wire's fixed-point resolution).
    #[test]
    fn modbus_state_round_trip(
        setpoint in 0.0f64..20.0,
        gain in 0.0f64..50.0,
        pressure in 0.0f64..30.0,
        mode in 0u16..3,
        scheme in 0u16..2,
        pump in proptest::bool::ANY,
        solenoid in proptest::bool::ANY,
    ) {
        use icsad_modbus::pipeline::*;
        let quantize = |v: f64| (v * 100.0).round() / 100.0;
        let state = PipelineState {
            pid: PidSettings {
                setpoint: quantize(setpoint),
                gain: quantize(gain),
                ..PidSettings::default()
            },
            mode: SystemMode::from_code(mode).unwrap(),
            scheme: ControlScheme::from_code(scheme).unwrap(),
            pump_on: pump,
            solenoid_open: solenoid,
            pressure: quantize(pressure),
        };
        let frame = encode_read_response(4, &state);
        let wire = frame.encode();
        let decoded = icsad_modbus::Frame::decode(&wire).unwrap();
        let back = decode_read_response(&decoded).unwrap();
        prop_assert_eq!(back, state);
    }
}
