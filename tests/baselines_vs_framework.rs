//! Integration tests for the Table IV / Table V comparison protocol:
//! the framework and all six baselines run on the same capture.

use icsad::prelude::*;
use icsad_baselines::window::{window_label, Windows};
use icsad_baselines::{
    calibrate_fpr, BayesianNetwork, Gmm, IsolationForest, PcaSvd, Svdd, WindowBloomFilter,
    WindowDetector,
};

struct Setup {
    split: Split,
    disc: Discretizer,
}

fn setup(seed: u64, total: usize) -> Setup {
    let data = GasPipelineDataset::generate(&DatasetConfig {
        total_packages: total,
        seed,
        attack_probability: 0.1,
        ..DatasetConfig::default()
    });
    let split = data.split_chronological(0.6, 0.2);
    let disc = Discretizer::fit(
        &DiscretizationConfig::paper_defaults(),
        split.train().records(),
    )
    .unwrap();
    Setup { split, disc }
}

fn evaluate(det: &dyn WindowDetector, windows: &Windows) -> ClassificationReport {
    let mut report = ClassificationReport::default();
    for w in windows.iter() {
        report.record(window_label(w), det.is_anomalous(w));
    }
    report
}

#[test]
fn all_baselines_train_and_produce_reports() {
    let Setup { split, disc } = setup(1, 16_000);
    let train = Windows::over(split.train().records(), 4);
    let val = Windows::over(split.validation().records(), 4);
    let test = Windows::over(split.test(), 4);

    let mut detectors: Vec<Box<dyn WindowDetector>> = vec![
        Box::new(WindowBloomFilter::fit_windows(disc.clone(), &train, 0.001).unwrap()),
        Box::new(BayesianNetwork::fit_windows(disc.clone(), &train)),
        Box::new(Svdd::fit_windows(&train, &Default::default()).unwrap()),
        Box::new(IsolationForest::fit_windows(&train, 50, 128, 3).unwrap()),
        Box::new(Gmm::fit_windows(&train, &Default::default()).unwrap()),
        Box::new(PcaSvd::fit_windows(&train, 0.95).unwrap()),
    ];
    for det in detectors.iter_mut().skip(1) {
        calibrate_fpr(det.as_mut(), &val, 0.02);
    }
    for det in &detectors {
        let report = evaluate(det.as_ref(), &test);
        assert_eq!(report.confusion.total() as usize, test.len());
        // Every model must at least do something on this data.
        assert!(
            report.recall() > 0.0 || det.name() == "SVDD" || det.name() == "IF",
            "{} has zero recall",
            det.name()
        );
    }
}

#[test]
fn signature_models_beat_numeric_models_on_signature_attacks() {
    // MFCI/Recon change function codes and addresses — categorical features
    // the signature-based detectors (BF/BN) key on directly. The paper's
    // Table V shows BF/BN at 1.0 for both while IF sits near 0.
    let Setup { split, disc } = setup(2, 20_000);
    let train = Windows::over(split.train().records(), 4);
    let test = Windows::over(split.test(), 4);

    let bf = WindowBloomFilter::fit_windows(disc.clone(), &train, 0.001).unwrap();
    let report = evaluate(&bf, &test);
    for ty in [AttackType::Mfci, AttackType::Recon] {
        if report.per_attack.count(ty) > 0 {
            assert!(
                report.per_attack.ratio(ty).unwrap() > 0.9,
                "window BF should catch ~all {} windows",
                ty.name()
            );
        }
    }
}

#[test]
fn signature_models_both_detect_substantially() {
    // Table IV reports identical P/R for BF and BN (both are signature-
    // frequency models). Exact equality only emerges once signature
    // coverage converges (paper scale, see EXPERIMENTS.md); at this size we
    // assert the shape: both recall a substantial share of attacks, and the
    // unthresholded BF (which flags *any* unseen window) recalls at least
    // as much as the 2%-FPR-calibrated BN.
    let Setup { split, disc } = setup(3, 20_000);
    let train = Windows::over(split.train().records(), 4);
    let val = Windows::over(split.validation().records(), 4);
    let test = Windows::over(split.test(), 4);

    let bf = WindowBloomFilter::fit_windows(disc.clone(), &train, 0.001).unwrap();
    let mut bn = BayesianNetwork::fit_windows(disc.clone(), &train);
    calibrate_fpr(&mut bn, &val, 0.02);

    let r_bf = evaluate(&bf, &test).recall();
    let r_bn = evaluate(&bn, &test).recall();
    assert!(r_bf > 0.5, "window BF recall {r_bf}");
    assert!(r_bn > 0.3, "BN recall {r_bn}");
    assert!(r_bf >= r_bn - 0.05, "BF {r_bf} should not trail BN {r_bn}");
}

#[test]
fn framework_recall_dominates_isolation_forest() {
    // The paper's headline (Table IV/V): the combined framework detects far
    // more attacks than the numeric one-class baselines (IF recall 0.13 vs
    // framework 0.78). Compare at the same (window) granularity: a window
    // counts as flagged by the framework if any of its 4 packages is.
    let Setup { split, disc: _ } = setup(4, 20_000);

    let trained = icsad_core::experiment::train_framework(
        &split,
        &ExperimentConfig {
            timeseries: TimeSeriesTrainingConfig {
                hidden_dims: vec![32],
                epochs: 8,
                learning_rate: 1e-2,
                ..TimeSeriesTrainingConfig::default()
            },
            ..ExperimentConfig::default()
        },
    )
    .unwrap();
    let levels = trained.detector.classify_stream(split.test());
    let test = Windows::over(split.test(), 4);
    let mut framework = ClassificationReport::default();
    for (i, w) in test.iter().enumerate() {
        let any = levels[i * 4..(i + 1) * 4].iter().any(|l| l.is_anomalous());
        framework.record(window_label(w), any);
    }

    let train = Windows::over(split.train().records(), 4);
    let val = Windows::over(split.validation().records(), 4);
    let mut forest = IsolationForest::fit_windows(&train, 100, 256, 5).unwrap();
    calibrate_fpr(&mut forest, &val, 0.02);
    let forest_report = evaluate(&forest, &test);

    assert!(
        framework.recall() > forest_report.recall() + 0.2,
        "framework recall {} must dominate isolation forest recall {}",
        framework.recall(),
        forest_report.recall()
    );
}
